"""End-to-end integration tests across modules.

These exercise the whole pipeline — data generation, configuration,
(partitioned / distributed / featurized) training, checkpointing and
evaluation — the way the examples and benchmarks use it.
"""

import numpy as np
import pytest

from repro.config import ConfigSchema, EntitySchema, RelationSchema
from repro.core.model import EmbeddingModel
from repro.core.tables import FeaturizedEmbeddingTable
from repro.core.trainer import Trainer
from repro.datasets import (
    knowledge_graph,
    social_network,
    split_with_coverage,
    user_item_graph,
)
from repro.distributed.cluster import DistributedTrainer
from repro.eval.ranking import LinkPredictionEvaluator
from repro.graph.entity_storage import EntityStorage
from repro.graph.partitioning import partition_entities
from repro.graph.storage import PartitionedEmbeddingStorage


class TestSocialPipeline:
    def test_social_training_beats_random(self):
        g = social_network(800, 8000, seed=0)
        train, test = split_with_coverage(
            g.edges, [0.75, 0.25], np.random.default_rng(0)
        )
        config = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[RelationSchema(name="f", lhs="node", rhs="node")],
            dimension=32, num_epochs=6, batch_size=500, chunk_size=50,
            lr=0.1, comparator="cos", margin=0.1,
        )
        entities = EntityStorage({"node": g.num_nodes})
        model = EmbeddingModel(config, entities)
        Trainer(config, model, entities).train(train)
        ev = LinkPredictionEvaluator(model)
        m = ev.evaluate(
            test[:800], num_candidates=200, rng=np.random.default_rng(0)
        )
        # Random would give MRR ≈ Σ 1/r / 200 ≈ 0.03.
        assert m.mrr > 0.08
        assert m.hits_at[10] > 0.2


class TestKnowledgePipeline:
    def test_multirelation_training(self):
        kg = knowledge_graph(1000, 12, 15000, noise=0.02, seed=1)
        train, valid, test = split_with_coverage(
            kg.edges, [0.9, 0.05, 0.05], np.random.default_rng(1)
        )
        config = ConfigSchema(
            entities={"ent": EntitySchema()},
            relations=[
                RelationSchema(
                    name=f"r{i}", lhs="ent", rhs="ent", operator="translation"
                )
                for i in range(12)
            ],
            dimension=32, num_epochs=8, batch_size=500, chunk_size=50,
            lr=0.1,
        )
        entities = EntityStorage({"ent": kg.num_entities})
        model = EmbeddingModel(config, entities)
        Trainer(config, model, entities).train(train)
        ev = LinkPredictionEvaluator(model, filter_edges=[train, valid, test])
        raw = ev.evaluate(
            test[:600], num_candidates=200, rng=np.random.default_rng(0)
        )
        filt = ev.evaluate(
            test[:600], num_candidates=200, filtered=True,
            rng=np.random.default_rng(0),
        )
        assert raw.mrr > 0.08
        assert filt.mrr >= raw.mrr


class TestTypedNegatives:
    def test_bipartite_graph_trains_with_two_entity_types(self):
        """User→item edges: negatives must come from the item table, so
        scores between users never enter the loss. We verify the model
        learns item preference despite wildly unbalanced type sizes."""
        edges, user_cat, item_cat = user_item_graph(2000, 60, 10000, seed=2)
        config = ConfigSchema(
            entities={"user": EntitySchema(), "item": EntitySchema()},
            relations=[RelationSchema(name="buys", lhs="user", rhs="item")],
            dimension=16, num_epochs=6, batch_size=500, chunk_size=50,
            lr=0.1,
        )
        entities = EntityStorage({"user": 2000, "item": 60})
        model = EmbeddingModel(config, entities)
        Trainer(config, model, entities).train(edges)
        ev = LinkPredictionEvaluator(model)
        m = ev.evaluate(
            edges[:500], num_candidates=None, both_sides=False,
            rng=np.random.default_rng(0),
        )
        # Ranking over all 60 items; category structure should place the
        # true item well above the 30 wrong-category items on average.
        assert m.mr < 25


class TestFeaturizedPipeline:
    def test_featurized_entity_type_trains(self):
        """Items are bags of tag-features; the feature table learns."""
        rng = np.random.default_rng(3)
        n_users, n_items, n_tags = 300, 40, 15
        item_tags = [
            list(rng.choice(n_tags, size=2, replace=False))
            for _ in range(n_items)
        ]
        config = ConfigSchema(
            entities={
                "user": EntitySchema(),
                "item": EntitySchema(featurized=True, num_features=n_tags),
            },
            relations=[RelationSchema(name="buys", lhs="user", rhs="item")],
            dimension=16, num_epochs=5, batch_size=200, chunk_size=50,
            lr=0.1,
        )
        entities = EntityStorage({"user": n_users, "item": n_items})
        model = EmbeddingModel(config, entities)
        table = FeaturizedEmbeddingTable.create(
            item_tags, n_tags, 16, rng
        )
        model.set_table("item", 0, table)
        before = table.feature_weights.copy()

        src = rng.integers(0, n_users, 3000)
        dst = rng.integers(0, n_items, 3000)
        from repro.graph.edgelist import EdgeList

        edges = EdgeList(src, np.zeros(3000, dtype=np.int64), dst)
        Trainer(config, model, entities).train(edges)
        assert not np.allclose(table.feature_weights, before)
        emb = model.global_embeddings("item")
        assert emb.shape == (n_items, 16)


class TestCheckpointResume:
    def test_checkpoint_and_resume_equivalent_scores(self, tmp_path):
        from repro.core.tables import DenseEmbeddingTable
        from repro.graph.storage import CheckpointStorage

        g = social_network(200, 2000, seed=4)
        config = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[
                RelationSchema(
                    name="f", lhs="node", rhs="node", operator="translation"
                )
            ],
            dimension=16, num_epochs=3, batch_size=200, chunk_size=50,
        )
        entities = EntityStorage({"node": 200})
        model = EmbeddingModel(config, entities)
        Trainer(config, model, entities).train(g.edges)

        ckpt = CheckpointStorage(tmp_path)
        ckpt.save_config(config.to_json())
        t = model.get_table("node", 0)
        ckpt.partitions.save("node", 0, t.weights, t.optimizer.state)
        ckpt.save_shared(model.get_shared_params())

        config2 = ConfigSchema.from_json(ckpt.load_config())
        model2 = EmbeddingModel(config2, EntityStorage({"node": 200}))
        emb, state = ckpt.partitions.load("node", 0)
        model2.set_table("node", 0, DenseEmbeddingTable(emb, state))
        model2.set_shared_params(ckpt.load_shared())

        ev1 = LinkPredictionEvaluator(model)
        ev2 = LinkPredictionEvaluator(model2)
        m1 = ev1.evaluate(
            g.edges[:200], num_candidates=50, rng=np.random.default_rng(0)
        )
        m2 = ev2.evaluate(
            g.edges[:200], num_candidates=50, rng=np.random.default_rng(0)
        )
        assert m1.mrr == pytest.approx(m2.mrr, abs=1e-4)


@pytest.mark.slow
class TestPartitionedVsDistributedParity:
    def test_three_training_modes_similar_quality(self, tmp_path):
        """Unpartitioned, partitioned-with-swap, and 2-machine
        distributed training land in the same quality band."""
        g = social_network(600, 7000, seed=5)
        train, test = split_with_coverage(
            g.edges, [0.8, 0.2], np.random.default_rng(5)
        )
        mrrs = {}

        def make_config(nparts, machines):
            return ConfigSchema(
                entities={"node": EntitySchema(num_partitions=nparts)},
                relations=[
                    RelationSchema(
                        name="f", lhs="node", rhs="node",
                        operator="translation",
                    )
                ],
                dimension=32, num_epochs=6, batch_size=500, chunk_size=50,
                lr=0.1, num_machines=machines, seed=11,
            )

        # Unpartitioned single machine.
        cfg = make_config(1, 1)
        ents = EntityStorage({"node": 600})
        model = EmbeddingModel(cfg, ents)
        Trainer(cfg, model, ents).train(train)
        mrrs["1p"] = LinkPredictionEvaluator(model).evaluate(
            test[:500], num_candidates=100, rng=np.random.default_rng(0)
        ).mrr

        # 4 partitions with disk swap.
        cfg = make_config(4, 1)
        ents = EntityStorage({"node": 600})
        ents.set_partitioning(
            "node", partition_entities(600, 4, np.random.default_rng(5))
        )
        model = EmbeddingModel(cfg, ents)
        storage = PartitionedEmbeddingStorage(tmp_path)
        Trainer(cfg, model, ents, storage).train(train)
        from repro.core.tables import DenseEmbeddingTable

        for p in range(4):
            if not model.has_table("node", p):
                model.set_table(
                    "node", p, DenseEmbeddingTable(*storage.load("node", p))
                )
        mrrs["4p"] = LinkPredictionEvaluator(model).evaluate(
            test[:500], num_candidates=100, rng=np.random.default_rng(0)
        ).mrr

        # 2 machines, 4 partitions.
        cfg = make_config(4, 2)
        ents = EntityStorage({"node": 600})
        ents.set_partitioning(
            "node", partition_entities(600, 4, np.random.default_rng(5))
        )
        model, _ = DistributedTrainer(cfg, ents).train(train)
        mrrs["2m"] = LinkPredictionEvaluator(model).evaluate(
            test[:500], num_candidates=100, rng=np.random.default_rng(0)
        ).mrr

        assert mrrs["1p"] > 0.08
        assert mrrs["4p"] > 0.6 * mrrs["1p"]
        assert mrrs["2m"] > 0.6 * mrrs["1p"]


class TestFailureInjection:
    def test_corrupt_partition_file_reinitialises(self, tmp_path):
        """A corrupt swap file must not crash training: the loader
        treats it as unreadable and re-initialises that partition (the
        other partitions keep their training progress)."""
        g = social_network(200, 1500, seed=6)
        config = ConfigSchema(
            entities={"node": EntitySchema(num_partitions=2)},
            relations=[RelationSchema(name="f", lhs="node", rhs="node")],
            dimension=8, num_epochs=1, batch_size=100, chunk_size=20,
        )
        entities = EntityStorage({"node": 200})
        entities.set_partitioning(
            "node", partition_entities(200, 2, np.random.default_rng(0))
        )
        model = EmbeddingModel(config, entities)
        storage = PartitionedEmbeddingStorage(tmp_path)
        trainer = Trainer(config, model, entities, storage)
        trainer.train(g.edges)
        # Corrupt a stored partition, then retrain: the loader treats a
        # corrupt file as unreadable and re-initialises that partition
        # (matching PBG's behaviour of restarting a partition whose
        # checkpoint is unusable) — training must not crash.
        (tmp_path / "node" / "part-00000.npz").write_bytes(b"junk")
        trainer.config = config.replace(num_epochs=1)
        stats = trainer.train(g.edges)
        assert stats.epochs[0].num_edges == len(g.edges)

    def test_isolated_nodes_are_harmless(self):
        """Nodes with no edges simply keep their random embeddings."""
        from repro.graph.edgelist import EdgeList

        config = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[RelationSchema(name="f", lhs="node", rhs="node")],
            dimension=8, num_epochs=2, batch_size=50, chunk_size=10,
            num_batch_negs=5, num_uniform_negs=5,
        )
        entities = EntityStorage({"node": 100})
        model = EmbeddingModel(config, entities)
        # Only nodes 0..9 have edges.
        edges = EdgeList.from_tuples(
            [(i, 0, (i + 1) % 10) for i in range(10)]
        )
        Trainer(config, model, entities).train(edges)
        emb = model.global_embeddings("node")
        assert np.isfinite(emb).all()
