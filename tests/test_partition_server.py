"""Tests for the sharded partition server."""

import threading
import time

import numpy as np
import pytest

from repro.distributed.partition_server import (
    PartitionServer,
    PartitionServerStorage,
)
from repro.graph.storage import StorageError


def _arrays(seed=0, n=10, d=4):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((n, d)).astype(np.float32),
        rng.random(n).astype(np.float32),
    )


class TestPartitionServer:
    def test_put_get_roundtrip(self):
        ps = PartitionServer(2)
        emb, state = _arrays()
        ps.put("node", 3, emb, state)
        emb2, state2 = ps.get("node", 3)
        np.testing.assert_array_equal(emb, emb2)
        np.testing.assert_array_equal(state, state2)

    def test_get_missing_returns_none(self):
        ps = PartitionServer(2)
        assert ps.get("node", 0) is None

    def test_copies_isolate_callers(self):
        """Mutating a fetched partition must not affect the server."""
        ps = PartitionServer(1)
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        got, _ = ps.get("node", 0)
        got += 100.0
        again, _ = ps.get("node", 0)
        np.testing.assert_array_equal(again, emb)

    def test_put_copies_input(self):
        ps = PartitionServer(1)
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        emb += 50.0
        stored, _ = ps.get("node", 0)
        assert not np.allclose(stored, emb)

    def test_sharding_by_partition_index(self):
        ps = PartitionServer(4)
        for p in range(8):
            ps.put("node", p, *_arrays(p, n=2))
        sizes = ps.shard_nbytes()
        assert len(sizes) == 4
        assert all(s > 0 for s in sizes)
        # Each shard hosts exactly 2 of the 8 partitions.
        assert len(set(sizes)) == 1

    def test_keys_sorted(self):
        ps = PartitionServer(2)
        ps.put("b", 1, *_arrays(n=1))
        ps.put("a", 0, *_arrays(n=1))
        assert ps.keys() == [("a", 0), ("b", 1)]

    def test_has(self):
        ps = PartitionServer(1)
        assert not ps.has("node", 0)
        ps.put("node", 0, *_arrays())
        assert ps.has("node", 0)

    def test_stats_accounting(self):
        ps = PartitionServer(1)
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        ps.get("node", 0)
        assert ps.stats.puts == 1 and ps.stats.gets == 1
        assert ps.stats.bytes_received == emb.nbytes + state.nbytes
        assert ps.stats.bytes_sent == emb.nbytes + state.nbytes

    def test_bandwidth_model_accumulates_delay(self):
        ps = PartitionServer(1, bandwidth_bytes_per_s=1e9)
        ps.put("node", 0, *_arrays(n=100))
        assert ps.stats.simulated_transfer_seconds > 0

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            PartitionServer(0)

    def test_concurrent_put_get_different_partitions(self):
        ps = PartitionServer(4)
        errors = []

        def worker(m):
            try:
                for i in range(20):
                    part = m * 20 + i
                    emb, state = _arrays(part, n=5)
                    ps.put("node", part, emb, state)
                    got, _ = ps.get("node", part)
                    np.testing.assert_array_equal(got, emb)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(m,)) for m in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(ps.keys()) == 80

    def test_overwrite_updates(self):
        ps = PartitionServer(1)
        emb1, state = _arrays(1)
        emb2, _ = _arrays(2)
        ps.put("node", 0, emb1, state)
        ps.put("node", 0, emb2, state)
        got, _ = ps.get("node", 0)
        np.testing.assert_array_equal(got, emb2)

    def test_miss_counts_as_get(self):
        """A fetch that returns None is still a request the server
        served — gets and misses must both count it."""
        ps = PartitionServer(1)
        assert ps.get("node", 0) is None
        ps.put("node", 0, *_arrays())
        ps.get("node", 0)
        assert ps.stats.gets == 2
        assert ps.stats.misses == 1


class TestVersioning:
    def test_put_bumps_version(self):
        ps = PartitionServer(2)
        assert ps.version("node", 1) == 0
        assert ps.put("node", 1, *_arrays()) == 1
        assert ps.put("node", 1, *_arrays(1)) == 2
        assert ps.version("node", 1) == 2

    def test_get_versioned(self):
        ps = PartitionServer(1)
        assert ps.get_versioned("node", 0) is None
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        got_emb, got_state, version = ps.get_versioned("node", 0)
        np.testing.assert_array_equal(got_emb, emb)
        assert version == 1

    def test_versions_independent_per_key(self):
        ps = PartitionServer(2)
        ps.put("a", 0, *_arrays(n=2))
        ps.put("a", 0, *_arrays(n=2))
        ps.put("b", 0, *_arrays(n=2))
        assert ps.version("a", 0) == 2
        assert ps.version("b", 0) == 1


class TestBandwidthContention:
    def test_concurrent_transfers_share_the_nic(self):
        """Two simultaneous fetches against one shard must queue behind
        each other — the modeled NIC is shared, not per-transfer."""
        emb, state = _arrays(n=1000, d=25)  # 100KB + state
        nbytes = emb.nbytes + state.nbytes
        per_transfer = 0.1
        ps = PartitionServer(1, bandwidth_bytes_per_s=nbytes / per_transfer)
        ps.bandwidth = None  # free put
        ps.put("node", 0, emb, state)
        ps.bandwidth = nbytes / per_transfer

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=ps.get, args=("node", 0))
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        assert elapsed >= 1.7 * per_transfer
        assert ps.stats.simulated_queue_seconds > 0

    def test_transfer_seconds_remain_pure_bandwidth_cost(self):
        ps = PartitionServer(1, bandwidth_bytes_per_s=1e9)
        ps.put("node", 0, *_arrays(n=100))
        assert ps.stats.simulated_transfer_seconds > 0


class TestPartitionServerStorage:
    def test_roundtrip_and_missing(self):
        store = PartitionServerStorage(PartitionServer(2))
        emb, state = _arrays()
        store.save("node", 1, emb, state)
        got_emb, got_state = store.load("node", 1)
        np.testing.assert_array_equal(got_emb, emb)
        np.testing.assert_array_equal(got_state, state)
        with pytest.raises(StorageError, match="has no"):
            store.load("node", 0)

    def test_is_current_tracks_foreign_puts(self):
        """A staged copy goes stale the moment another machine pushes a
        newer version of the partition."""
        server = PartitionServer(1)
        mine = PartitionServerStorage(server)
        theirs = PartitionServerStorage(server)
        mine.save("node", 0, *_arrays(1))
        assert mine.is_current("node", 0)
        theirs.save("node", 0, *_arrays(2))
        assert not mine.is_current("node", 0)
        assert theirs.is_current("node", 0)
        mine.load("node", 0)  # re-fetch refreshes the observed version
        assert mine.is_current("node", 0)

    def test_is_current_false_when_never_observed(self):
        store = PartitionServerStorage(PartitionServer(1))
        assert not store.is_current("node", 0)

    def test_io_accounting(self):
        store = PartitionServerStorage(PartitionServer(1))
        store.save("node", 0, *_arrays())
        store.load("node", 0)
        assert store.saves == 1 and store.loads == 1
        assert store.io_seconds > 0
