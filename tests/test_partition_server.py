"""Tests for the sharded partition server."""

import threading
import time

import numpy as np
import pytest

from repro.distributed.partition_server import (
    CodecDriftError,
    PartitionServer,
    PartitionServerStorage,
)
from repro.graph import compression
from repro.graph.storage import StorageError


def _arrays(seed=0, n=10, d=4):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((n, d)).astype(np.float32),
        rng.random(n).astype(np.float32),
    )


class TestPartitionServer:
    def test_put_get_roundtrip(self):
        ps = PartitionServer(2)
        emb, state = _arrays()
        ps.put("node", 3, emb, state)
        emb2, state2 = ps.get("node", 3)
        np.testing.assert_array_equal(emb, emb2)
        np.testing.assert_array_equal(state, state2)

    def test_get_missing_returns_none(self):
        ps = PartitionServer(2)
        assert ps.get("node", 0) is None

    def test_copies_isolate_callers(self):
        """Mutating a fetched partition must not affect the server."""
        ps = PartitionServer(1)
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        got, _ = ps.get("node", 0)
        got += 100.0
        again, _ = ps.get("node", 0)
        np.testing.assert_array_equal(again, emb)

    def test_put_copies_input(self):
        ps = PartitionServer(1)
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        emb += 50.0
        stored, _ = ps.get("node", 0)
        assert not np.allclose(stored, emb)

    def test_sharding_by_partition_index(self):
        ps = PartitionServer(4)
        for p in range(8):
            ps.put("node", p, *_arrays(p, n=2))
        sizes = ps.shard_nbytes()
        assert len(sizes) == 4
        assert all(s > 0 for s in sizes)
        # Each shard hosts exactly 2 of the 8 partitions.
        assert len(set(sizes)) == 1

    def test_keys_sorted(self):
        ps = PartitionServer(2)
        ps.put("b", 1, *_arrays(n=1))
        ps.put("a", 0, *_arrays(n=1))
        assert ps.keys() == [("a", 0), ("b", 1)]

    def test_has(self):
        ps = PartitionServer(1)
        assert not ps.has("node", 0)
        ps.put("node", 0, *_arrays())
        assert ps.has("node", 0)

    def test_stats_accounting(self):
        ps = PartitionServer(1)
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        ps.get("node", 0)
        assert ps.stats.puts == 1 and ps.stats.gets == 1
        assert ps.stats.bytes_received == emb.nbytes + state.nbytes
        assert ps.stats.bytes_sent == emb.nbytes + state.nbytes

    def test_bandwidth_model_accumulates_delay(self):
        ps = PartitionServer(1, bandwidth_bytes_per_s=1e9)
        ps.put("node", 0, *_arrays(n=100))
        assert ps.stats.simulated_transfer_seconds > 0

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            PartitionServer(0)

    def test_concurrent_put_get_different_partitions(self):
        ps = PartitionServer(4)
        errors = []

        def worker(m):
            try:
                for i in range(20):
                    part = m * 20 + i
                    emb, state = _arrays(part, n=5)
                    ps.put("node", part, emb, state)
                    got, _ = ps.get("node", part)
                    np.testing.assert_array_equal(got, emb)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(m,)) for m in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(ps.keys()) == 80

    def test_overwrite_updates(self):
        ps = PartitionServer(1)
        emb1, state = _arrays(1)
        emb2, _ = _arrays(2)
        ps.put("node", 0, emb1, state)
        ps.put("node", 0, emb2, state)
        got, _ = ps.get("node", 0)
        np.testing.assert_array_equal(got, emb2)

    def test_miss_counts_as_get(self):
        """A fetch that returns None is still a request the server
        served — gets and misses must both count it."""
        ps = PartitionServer(1)
        assert ps.get("node", 0) is None
        ps.put("node", 0, *_arrays())
        ps.get("node", 0)
        assert ps.stats.gets == 2
        assert ps.stats.misses == 1


class TestVersioning:
    def test_put_bumps_version(self):
        ps = PartitionServer(2)
        assert ps.version("node", 1) == 0
        assert ps.put("node", 1, *_arrays()) == 1
        assert ps.put("node", 1, *_arrays(1)) == 2
        assert ps.version("node", 1) == 2

    def test_get_versioned(self):
        ps = PartitionServer(1)
        assert ps.get_versioned("node", 0) is None
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        got_emb, got_state, version = ps.get_versioned("node", 0)
        np.testing.assert_array_equal(got_emb, emb)
        assert version == 1

    def test_versions_independent_per_key(self):
        ps = PartitionServer(2)
        ps.put("a", 0, *_arrays(n=2))
        ps.put("a", 0, *_arrays(n=2))
        ps.put("b", 0, *_arrays(n=2))
        assert ps.version("a", 0) == 2
        assert ps.version("b", 0) == 1


class TestBandwidthContention:
    def test_concurrent_transfers_share_the_nic(self):
        """Two simultaneous fetches against one shard must queue behind
        each other — the modeled NIC is shared, not per-transfer."""
        emb, state = _arrays(n=1000, d=25)  # 100KB + state
        nbytes = emb.nbytes + state.nbytes
        per_transfer = 0.1
        ps = PartitionServer(1, bandwidth_bytes_per_s=nbytes / per_transfer)
        ps.bandwidth = None  # free put
        ps.put("node", 0, emb, state)
        ps.bandwidth = nbytes / per_transfer

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=ps.get, args=("node", 0))
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        assert elapsed >= 1.7 * per_transfer
        assert ps.stats.simulated_queue_seconds > 0

    def test_transfer_seconds_remain_pure_bandwidth_cost(self):
        ps = PartitionServer(1, bandwidth_bytes_per_s=1e9)
        ps.put("node", 0, *_arrays(n=100))
        assert ps.stats.simulated_transfer_seconds > 0


class TestPartitionServerStorage:
    def test_roundtrip_and_missing(self):
        store = PartitionServerStorage(PartitionServer(2))
        emb, state = _arrays()
        store.save("node", 1, emb, state)
        got_emb, got_state = store.load("node", 1)
        np.testing.assert_array_equal(got_emb, emb)
        np.testing.assert_array_equal(got_state, state)
        with pytest.raises(StorageError, match="has no"):
            store.load("node", 0)

    def test_is_current_tracks_foreign_puts(self):
        """A staged copy goes stale the moment another machine pushes a
        newer version of the partition."""
        server = PartitionServer(1)
        mine = PartitionServerStorage(server)
        theirs = PartitionServerStorage(server)
        mine.save("node", 0, *_arrays(1))
        assert mine.is_current("node", 0)
        theirs.save("node", 0, *_arrays(2))
        assert not mine.is_current("node", 0)
        assert theirs.is_current("node", 0)
        mine.load("node", 0)  # re-fetch refreshes the observed version
        assert mine.is_current("node", 0)

    def test_is_current_false_when_never_observed(self):
        store = PartitionServerStorage(PartitionServer(1))
        assert not store.is_current("node", 0)

    def test_io_accounting(self):
        store = PartitionServerStorage(PartitionServer(1))
        store.save("node", 0, *_arrays())
        store.load("node", 0)
        assert store.saves == 1 and store.loads == 1
        assert store.io_seconds > 0


class TestCompressedServer:
    @pytest.mark.parametrize("codec", ["fp16", "int8"])
    def test_roundtrip_within_codec_tolerance(self, codec):
        ps = PartitionServer(2, codec=codec)
        emb, state = _arrays(n=50, d=16)
        ps.put("node", 0, emb, state)
        got_emb, got_state = ps.get("node", 0)
        np.testing.assert_allclose(got_emb, emb, atol=0.05, rtol=1e-3)
        # Optimizer state is never quantised.
        np.testing.assert_array_equal(got_state, state)

    def test_codec_name(self):
        assert PartitionServer(1).codec_name() == "none"
        assert PartitionServer(1, codec="int8").codec_name() == "int8"

    def test_wire_bytes_are_encoded_bytes(self):
        emb, state = _arrays(n=100, d=32)
        raw = emb.nbytes + state.nbytes
        ps = PartitionServer(1, codec="int8")
        ps.put("node", 0, emb, state)
        encoded = compression.wire_nbytes("int8", 100, 32)
        assert ps.stats.bytes_received == encoded
        assert ps.stats.bytes_saved == raw - encoded
        ps.get("node", 0)
        assert ps.stats.bytes_sent == encoded
        assert ps.stats.bytes_saved == 2 * (raw - encoded)

    def test_hosted_bytes_shrink(self):
        emb, state = _arrays(n=500, d=64)
        plain = PartitionServer(1)
        packed = PartitionServer(1, codec="int8")
        plain.put("node", 0, emb, state)
        packed.put("node", 0, emb, state)
        assert sum(packed.shard_nbytes()) < 0.35 * sum(plain.shard_nbytes())

    def test_uncompressed_path_bit_identical(self):
        """codec='none' must be byte-for-byte the legacy fp32 path."""
        ps = PartitionServer(1, codec="none")
        emb, state = _arrays(n=30, d=8)
        ps.put("node", 0, emb, state)
        got_emb, got_state = ps.get("node", 0)
        np.testing.assert_array_equal(got_emb, emb)
        np.testing.assert_array_equal(got_state, state)
        assert ps.stats.bytes_saved == 0


class TestPutDelta:
    def test_applies_under_current_version(self):
        ps = PartitionServer(1)
        emb, state = _arrays(n=20, d=4)
        v1 = ps.put("node", 0, emb, state)
        rows = np.array([2, 5], dtype=np.int64)
        new_emb = np.full((2, 4), 7.0, dtype=np.float32)
        new_state = np.full(2, 3.0, dtype=np.float32)
        v2 = ps.put_delta("node", 0, rows, new_emb, new_state, v1)
        assert v2 == v1 + 1
        got_emb, got_state = ps.get("node", 0)
        np.testing.assert_array_equal(got_emb[rows], new_emb)
        np.testing.assert_array_equal(got_state[rows], new_state)
        untouched = np.setdiff1d(np.arange(20), rows)
        np.testing.assert_array_equal(got_emb[untouched], emb[untouched])
        assert ps.stats.delta_puts == 1

    def test_stale_delta_rejected(self):
        ps = PartitionServer(1)
        emb, state = _arrays(n=10, d=4)
        v1 = ps.put("node", 0, emb, state)
        ps.put("node", 0, *_arrays(9, n=10))  # another machine pushes
        rows = np.array([0], dtype=np.int64)
        assert (
            ps.put_delta("node", 0, rows, emb[rows], state[rows], v1)
            is None
        )
        assert ps.stats.delta_stale == 1
        assert ps.stats.delta_puts == 0

    def test_delta_against_missing_key_rejected(self):
        ps = PartitionServer(1)
        rows = np.array([0], dtype=np.int64)
        assert (
            ps.put_delta(
                "node", 0, rows,
                np.zeros((1, 4), np.float32), np.zeros(1, np.float32), 0,
            )
            is None
        )
        assert ps.stats.delta_stale == 1

    def test_delta_charges_only_delta_bytes(self):
        ps = PartitionServer(1)
        emb, state = _arrays(n=100, d=16)
        v1 = ps.put("node", 0, emb, state)
        before = ps.stats.bytes_received
        rows = np.array([1, 2, 3], dtype=np.int64)
        ps.put_delta("node", 0, rows, emb[rows], state[rows], v1)
        assert (
            ps.stats.bytes_received - before
            == compression.delta_wire_nbytes("none", 3, 16)
        )

    def test_delta_bit_identical_under_none_codec(self):
        """Untouched rows pass through an encode→decode→encode cycle
        under codec none — they must come back bit-exact."""
        ps = PartitionServer(1)
        emb, state = _arrays(n=50, d=8)
        v1 = ps.put("node", 0, emb, state)
        rows = np.array([10], dtype=np.int64)
        ps.put_delta(
            "node", 0, rows,
            np.ones((1, 8), np.float32), np.ones(1, np.float32), v1,
        )
        got_emb, got_state = ps.get("node", 0)
        untouched = np.setdiff1d(np.arange(50), rows)
        np.testing.assert_array_equal(got_emb[untouched], emb[untouched])
        np.testing.assert_array_equal(got_state[untouched], state[untouched])

    def test_delta_stable_under_int8(self):
        """Repeated deltas against an int8 server must not drift
        untouched rows (requantisation is idempotent)."""
        ps = PartitionServer(1, codec="int8")
        emb, state = _arrays(n=30, d=8)
        v = ps.put("node", 0, emb, state)
        baseline, _ = ps.get("node", 0)
        for i in range(5):
            rows = np.array([i], dtype=np.int64)
            v = ps.put_delta(
                "node", 0, rows,
                np.full((1, 8), float(i), np.float32),
                np.zeros(1, np.float32), v,
            )
        got, _ = ps.get("node", 0)
        untouched = np.arange(5, 30)
        np.testing.assert_array_equal(got[untouched], baseline[untouched])


class TestDeltaWriteback:
    def _pair(self, codec="none"):
        server = PartitionServer(1, codec=codec)
        return server, PartitionServerStorage(server, use_delta=True)

    def test_partial_dirty_rows_push_delta(self):
        server, store = self._pair()
        emb, state = _arrays(n=40, d=4)
        store.save("node", 0, emb, state)  # first push is always full
        emb2 = emb.copy()
        dirty = np.array([3, 17], dtype=np.int64)
        emb2[dirty] += 1.0
        store.save("node", 0, emb2, state, dirty_rows=dirty)
        assert store.delta_pushes == 1
        got, _ = store.load("node", 0)
        np.testing.assert_array_equal(got, emb2)

    def test_zero_dirty_rows_skip_transfer(self):
        server, store = self._pair()
        emb, state = _arrays(n=10, d=4)
        store.save("node", 0, emb, state)
        sent_before = store.bytes_sent
        store.save(
            "node", 0, emb, state, dirty_rows=np.array([], dtype=np.int64)
        )
        assert store.delta_skips == 1
        assert store.bytes_sent == sent_before
        assert server.stats.puts == 1  # no second transfer reached the server

    def test_zero_dirty_rows_with_stale_baseline_full_push(self):
        """'Nothing changed locally' is not enough — if another machine
        moved the server copy, skipping would *lose our rows*; must push."""
        server, store = self._pair()
        other = PartitionServerStorage(server)
        emb, state = _arrays(n=10, d=4)
        store.save("node", 0, emb, state)
        other.save("node", 0, *_arrays(5, n=10))
        store.save(
            "node", 0, emb, state, dirty_rows=np.array([], dtype=np.int64)
        )
        assert store.delta_skips == 0
        got, _ = store.load("node", 0)
        np.testing.assert_array_equal(got, emb)

    def test_stale_delta_degrades_to_full_push(self):
        server, store = self._pair()
        other = PartitionServerStorage(server)
        emb, state = _arrays(n=20, d=4)
        store.save("node", 0, emb, state)
        other.save("node", 0, *_arrays(5, n=20))  # invalidates our baseline
        emb2 = emb.copy()
        dirty = np.array([1], dtype=np.int64)
        emb2[dirty] += 1.0
        store.save("node", 0, emb2, state, dirty_rows=dirty)
        assert store.delta_fallbacks == 1
        assert store.delta_pushes == 0
        got, _ = store.load("node", 0)
        np.testing.assert_array_equal(got, emb2)
        assert server.stats.delta_stale == 1

    def test_all_rows_dirty_full_push(self):
        server, store = self._pair()
        emb, state = _arrays(n=8, d=4)
        store.save("node", 0, emb, state)
        store.save(
            "node", 0, emb, state, dirty_rows=np.arange(8, dtype=np.int64)
        )
        assert store.delta_pushes == 0
        assert server.stats.puts == 2

    def test_delta_disabled_always_full_push(self):
        server = PartitionServer(1)
        store = PartitionServerStorage(server)  # use_delta=False
        emb, state = _arrays(n=8, d=4)
        store.save("node", 0, emb, state)
        store.save(
            "node", 0, emb, state, dirty_rows=np.array([1], dtype=np.int64)
        )
        assert server.stats.puts == 2
        assert store.delta_pushes == 0

    def test_adapter_wire_counters(self):
        server, store = self._pair(codec="int8")
        emb, state = _arrays(n=100, d=16)
        store.save("node", 0, emb, state)
        full = compression.wire_nbytes("int8", 100, 16)
        raw = compression.wire_nbytes("none", 100, 16)
        assert store.bytes_sent == full
        assert store.bytes_saved == raw - full
        dirty = np.array([1, 2], dtype=np.int64)
        emb2 = emb.copy()
        emb2[dirty] += 1.0
        store.save("node", 0, emb2, state, dirty_rows=dirty)
        assert store.delta_pushes == 1
        assert (
            store.bytes_sent
            == full + compression.delta_wire_nbytes("int8", 2, 16)
        )
        store.load("node", 0)
        assert store.bytes_received == full


class TestCodecDriftGuard:
    def test_drifted_dtype_raises(self):
        server = PartitionServer(1)
        store = PartitionServerStorage(server)
        server.put("node", 0, *_arrays())

        def bad_get_versioned(entity_type, part):
            emb, state, v = PartitionServer.get_versioned(
                server, entity_type, part
            )
            return emb.astype(np.float16), state, v

        store.server = type(
            "Proxy", (), {
                "get_versioned": staticmethod(bad_get_versioned),
                "codec_name": staticmethod(server.codec_name),
            },
        )()
        with pytest.raises(CodecDriftError, match="float16"):
            store.load("node", 0)

    def test_drifted_state_shape_raises(self):
        server = PartitionServer(1)
        store = PartitionServerStorage(server)
        server.put("node", 0, *_arrays(n=10))

        def bad_get_versioned(entity_type, part):
            emb, state, v = PartitionServer.get_versioned(
                server, entity_type, part
            )
            return emb, state[:-1], v

        store.server = type(
            "Proxy", (), {
                "get_versioned": staticmethod(bad_get_versioned),
                "codec_name": staticmethod(server.codec_name),
            },
        )()
        with pytest.raises(CodecDriftError, match="optimizer"):
            store.load("node", 0)

    def test_drift_is_not_a_storage_error(self):
        """StorageError means 'partition absent, initialise it' to every
        consumer; drift must never be masked as that."""
        assert not issubclass(CodecDriftError, StorageError)
