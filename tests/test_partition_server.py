"""Tests for the sharded partition server."""

import threading

import numpy as np
import pytest

from repro.distributed.partition_server import PartitionServer


def _arrays(seed=0, n=10, d=4):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((n, d)).astype(np.float32),
        rng.random(n).astype(np.float32),
    )


class TestPartitionServer:
    def test_put_get_roundtrip(self):
        ps = PartitionServer(2)
        emb, state = _arrays()
        ps.put("node", 3, emb, state)
        emb2, state2 = ps.get("node", 3)
        np.testing.assert_array_equal(emb, emb2)
        np.testing.assert_array_equal(state, state2)

    def test_get_missing_returns_none(self):
        ps = PartitionServer(2)
        assert ps.get("node", 0) is None

    def test_copies_isolate_callers(self):
        """Mutating a fetched partition must not affect the server."""
        ps = PartitionServer(1)
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        got, _ = ps.get("node", 0)
        got += 100.0
        again, _ = ps.get("node", 0)
        np.testing.assert_array_equal(again, emb)

    def test_put_copies_input(self):
        ps = PartitionServer(1)
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        emb += 50.0
        stored, _ = ps.get("node", 0)
        assert not np.allclose(stored, emb)

    def test_sharding_by_partition_index(self):
        ps = PartitionServer(4)
        for p in range(8):
            ps.put("node", p, *_arrays(p, n=2))
        sizes = ps.shard_nbytes()
        assert len(sizes) == 4
        assert all(s > 0 for s in sizes)
        # Each shard hosts exactly 2 of the 8 partitions.
        assert len(set(sizes)) == 1

    def test_keys_sorted(self):
        ps = PartitionServer(2)
        ps.put("b", 1, *_arrays(n=1))
        ps.put("a", 0, *_arrays(n=1))
        assert ps.keys() == [("a", 0), ("b", 1)]

    def test_has(self):
        ps = PartitionServer(1)
        assert not ps.has("node", 0)
        ps.put("node", 0, *_arrays())
        assert ps.has("node", 0)

    def test_stats_accounting(self):
        ps = PartitionServer(1)
        emb, state = _arrays()
        ps.put("node", 0, emb, state)
        ps.get("node", 0)
        assert ps.stats.puts == 1 and ps.stats.gets == 1
        assert ps.stats.bytes_received == emb.nbytes + state.nbytes
        assert ps.stats.bytes_sent == emb.nbytes + state.nbytes

    def test_bandwidth_model_accumulates_delay(self):
        ps = PartitionServer(1, bandwidth_bytes_per_s=1e9)
        ps.put("node", 0, *_arrays(n=100))
        assert ps.stats.simulated_transfer_seconds > 0

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            PartitionServer(0)

    def test_concurrent_put_get_different_partitions(self):
        ps = PartitionServer(4)
        errors = []

        def worker(m):
            try:
                for i in range(20):
                    part = m * 20 + i
                    emb, state = _arrays(part, n=5)
                    ps.put("node", part, emb, state)
                    got, _ = ps.get("node", part)
                    np.testing.assert_array_equal(got, emb)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(m,)) for m in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(ps.keys()) == 80

    def test_overwrite_updates(self):
        ps = PartitionServer(1)
        emb1, state = _arrays(1)
        emb2, _ = _arrays(2)
        ps.put("node", 0, emb1, state)
        ps.put("node", 0, emb2, state)
        got, _ = ps.get("node", 0)
        np.testing.assert_array_equal(got, emb2)
