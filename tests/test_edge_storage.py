"""Tests for on-disk bucketed edge storage."""

import numpy as np

from repro.config import ConfigSchema, EntitySchema, RelationSchema
from repro.graph.edge_storage import BucketedEdgeStorage
from repro.graph.edgelist import EdgeList
from repro.graph.entity_storage import EntityStorage
from repro.graph.partitioning import bucket_edges, partition_entities


def _bucketed(nparts=3, n=60, num_edges=400, seed=0):
    config = ConfigSchema(
        entities={"node": EntitySchema(num_partitions=nparts)},
        relations=[RelationSchema(name="r", lhs="node", rhs="node")],
        dimension=4,
    )
    entities = EntityStorage({"node": n})
    entities.set_partitioning(
        "node", partition_entities(n, nparts, np.random.default_rng(seed))
    )
    rng = np.random.default_rng(seed + 1)
    edges = EdgeList(
        rng.integers(0, n, num_edges),
        np.zeros(num_edges, dtype=np.int64),
        rng.integers(0, n, num_edges),
        rng.random(num_edges) + 0.1,
    )
    return bucket_edges(edges, config, entities), config, entities


class TestBucketedEdgeStorage:
    def test_save_load_roundtrip(self, tmp_path):
        bucketed, _, _ = _bucketed()
        storage = BucketedEdgeStorage(tmp_path)
        storage.save(bucketed)
        for key, edges in bucketed.buckets.items():
            loaded = storage.load_bucket(*key)
            assert loaded == edges

    def test_grid_metadata(self, tmp_path):
        bucketed, _, _ = _bucketed(nparts=4)
        storage = BucketedEdgeStorage(tmp_path)
        storage.save(bucketed)
        assert storage.grid() == (4, 4)

    def test_missing_bucket_empty(self, tmp_path):
        storage = BucketedEdgeStorage(tmp_path)
        assert len(storage.load_bucket(9, 9)) == 0

    def test_stored_buckets_sorted(self, tmp_path):
        bucketed, _, _ = _bucketed()
        storage = BucketedEdgeStorage(tmp_path)
        storage.save(bucketed)
        stored = storage.stored_buckets()
        assert stored == sorted(stored)
        assert set(stored) == set(bucketed.nonempty_buckets())

    def test_nbytes(self, tmp_path):
        bucketed, _, _ = _bucketed()
        storage = BucketedEdgeStorage(tmp_path)
        assert storage.nbytes() == 0
        storage.save(bucketed)
        assert storage.nbytes() > 0


class TestLazyBucketedEdges:
    def test_duck_typing_matches_eager(self, tmp_path):
        bucketed, _, _ = _bucketed()
        storage = BucketedEdgeStorage(tmp_path)
        storage.save(bucketed)
        lazy = storage.load_lazy()
        assert lazy.nparts_lhs == bucketed.nparts_lhs
        assert lazy.num_edges() == bucketed.num_edges()
        assert set(lazy.nonempty_buckets()) == set(
            bucketed.nonempty_buckets()
        )
        for key in bucketed.nonempty_buckets():
            assert lazy.edges_for(key) == bucketed.edges_for(key)

    def test_trainer_streams_from_disk(self, tmp_path):
        """The partitioned trainer accepts a lazy view transparently."""
        from repro.core.model import EmbeddingModel
        from repro.core.trainer import Trainer
        from repro.graph.storage import PartitionedEmbeddingStorage

        bucketed, config, entities = _bucketed(nparts=3)
        config = config.replace(
            num_epochs=2, batch_size=64, chunk_size=16,
            num_batch_negs=4, num_uniform_negs=4,
        )
        storage = BucketedEdgeStorage(tmp_path / "edges")
        storage.save(bucketed)
        lazy = storage.load_lazy()

        model = EmbeddingModel(config, entities)
        trainer = Trainer(
            config, model, entities,
            PartitionedEmbeddingStorage(tmp_path / "parts"),
        )
        stats = trainer.train_bucketed(lazy)
        assert stats.total_edges == 2 * bucketed.num_edges()
