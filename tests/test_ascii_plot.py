"""Tests for the ASCII figure renderer."""

import pytest

from repro.eval.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_single_series_renders(self):
        out = ascii_plot(
            {"a": [(0, 0.0), (1, 0.5), (2, 1.0)]},
            width=20, height=8, x_label="epoch", y_label="mrr",
        )
        assert "o = a" in out
        assert out.count("o") >= 3 + 1  # three points + legend
        assert "epoch" in out and "mrr" in out

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot(
            {"pbg": [(0, 1.0)], "deepwalk": [(0, 0.5)]},
            width=16, height=6,
        )
        assert "o = pbg" in out and "x = deepwalk" in out

    def test_extremes_on_grid(self):
        """Min/max points land on the first/last columns."""
        out = ascii_plot({"s": [(0, 0), (10, 1)]}, width=12, height=6)
        lines = out.splitlines()
        top = lines[0]
        assert top.rstrip().endswith("o")  # max y, max x → top right

    def test_constant_series_safe(self):
        out = ascii_plot({"flat": [(0, 0.5), (1, 0.5)]}, width=10, height=5)
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": []})
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 0)]}, width=2, height=2)

    def test_nonfinite_points_skipped(self):
        out = ascii_plot(
            {"a": [(0, 0.0), (1, float("nan")), (2, 1.0)]},
            width=12, height=5,
        )
        assert "o" in out
