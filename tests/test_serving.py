"""Tests for the serving layer: IVF-PQ, mmap shards, snapshot swap.

The load-bearing properties pinned here:

- exact equivalence: an IVF index probing every list (PQ off) is
  **bit-identical** to :class:`ExactIndex` (hypothesis property test);
- recall regression: a real approximate configuration keeps
  recall@10 >= 0.95 on clustered data;
- swap safety: concurrent queries racing publishes never observe a
  mixed view (scores always match the version the snapshot claims),
  and retired snapshots drain + close exactly once.
"""

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ConfigError, ConfigSchema, ServingConfig
from repro.eval.classification import knn_predict_labels
from repro.eval.ranking import retrieval_recall
from repro.serving import (
    ExactIndex,
    IVFPQIndex,
    KnnIndex,
    MmapShardedTable,
    ProductQuantizer,
    QueryService,
    ServingError,
    SnapshotManager,
    current_version,
    kmeans,
    list_versions,
    make_index,
    publish_embeddings,
)
from repro.serving.shards import MANIFEST_NAME


def _clustered(n_per=40, c=16, d=16, seed=0):
    """Well-separated Gaussian blobs — IVF's favourable regime."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((c, d)) * 6
    emb = np.vstack(
        [centers[i] + 0.3 * rng.standard_normal((n_per, d))
         for i in range(c)]
    )
    labels = np.repeat(np.arange(c), n_per)
    return emb.astype(np.float32), labels


def _overlap_recall(idx, true_idx):
    """Mean fraction of the exact top-k recovered per query."""
    hits = [
        len(np.intersect1d(a, b)) / true_idx.shape[1]
        for a, b in zip(idx, true_idx)
    ]
    return float(np.mean(hits))


# ----------------------------------------------------------------------
# k-means + PQ building blocks
# ----------------------------------------------------------------------


class TestKmeans:
    def test_deterministic(self):
        emb, _ = _clustered()
        c1, a1 = kmeans(emb, 8, 5, np.random.default_rng(7))
        c2, a2 = kmeans(emb, 8, 5, np.random.default_rng(7))
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(a1, a2)

    def test_partitions_all_rows(self):
        emb, _ = _clustered()
        centroids, assign = kmeans(emb, 8, 5, np.random.default_rng(0))
        assert centroids.shape == (8, emb.shape[1])
        assert assign.shape == (len(emb),)
        assert assign.min() >= 0 and assign.max() < 8

    def test_cells_pure_on_separated_clusters(self):
        # With more cells than blobs, every k-means cell ends up
        # inside one blob (Lloyd's may still split a blob — that is
        # fine; what it must not do is straddle two).
        emb, labels = _clustered(c=4, n_per=30)
        _, assign = kmeans(emb, 8, 10, np.random.default_rng(0))
        for cell in range(8):
            assert len(np.unique(labels[assign == cell])) <= 1

    def test_always_returns_k_centroids(self):
        # Fewer distinct points than k forces empty-cluster reseeds.
        data = np.repeat(np.eye(3), 4, axis=0)  # 12 rows, 3 distinct
        centroids, assign = kmeans(data, 10, 5, np.random.default_rng(0))
        assert centroids.shape == (10, 3)
        assert np.isfinite(centroids).all()
        assert assign.max() < 10

    def test_k_validation(self):
        emb, _ = _clustered()
        with pytest.raises(ValueError, match="k must be in"):
            kmeans(emb, 0, 5, np.random.default_rng(0))
        with pytest.raises(ValueError, match="k must be in"):
            kmeans(emb, len(emb) + 1, 5, np.random.default_rng(0))


class TestProductQuantizer:
    def test_validation(self):
        with pytest.raises(ValueError, match="num_subvectors"):
            ProductQuantizer(0)
        with pytest.raises(ValueError, match="num_centroids"):
            ProductQuantizer(4, num_centroids=257)
        with pytest.raises(ValueError, match="divisible"):
            ProductQuantizer(5).fit(
                np.zeros((10, 16)), np.random.default_rng(0)
            )

    def test_unfitted_raises(self):
        pq = ProductQuantizer(4)
        with pytest.raises(ServingError, match="not fitted"):
            pq.encode(np.zeros((2, 16)))
        with pytest.raises(ServingError, match="not fitted"):
            pq.decode(np.zeros((2, 4), dtype=np.uint8))
        assert pq.nbytes() == 0

    def test_codes_are_uint8(self):
        emb, _ = _clustered(d=16)
        pq = ProductQuantizer(4).fit(emb, np.random.default_rng(0))
        codes = pq.encode(emb)
        assert codes.dtype == np.uint8
        assert codes.shape == (len(emb), 4)
        assert pq.decode(codes).shape == emb.shape

    def test_exact_roundtrip_with_enough_centroids(self):
        # <= 256 distinct rows and k-means run to convergence: every
        # point gets its own centroid, so encode/decode is lossless.
        rng = np.random.default_rng(3)
        emb = rng.standard_normal((40, 8))
        pq = ProductQuantizer(2, iters=25).fit(emb, np.random.default_rng(0))
        np.testing.assert_allclose(
            pq.decode(pq.encode(emb)), emb, atol=1e-10
        )

    def test_quantisation_beats_mean_baseline(self):
        emb, _ = _clustered(n_per=60, c=8, d=16)
        pq = ProductQuantizer(4).fit(emb, np.random.default_rng(0))
        err = np.linalg.norm(pq.decode(pq.encode(emb)) - emb)
        baseline = np.linalg.norm(emb - emb.mean(axis=0))
        assert err < 0.25 * baseline


# ----------------------------------------------------------------------
# IVF-PQ index
# ----------------------------------------------------------------------


class TestIVFPQIndex:
    def test_implements_protocol(self):
        emb, _ = _clustered()
        assert isinstance(
            IVFPQIndex(num_lists=4).build(emb), KnnIndex
        )

    def test_query_before_build(self):
        with pytest.raises(ServingError, match="build"):
            IVFPQIndex().query(np.zeros((1, 4)), k=1)

    def test_build_validation(self):
        with pytest.raises(ValueError, match="\\(n, d\\)"):
            IVFPQIndex().build(np.zeros(5))
        with pytest.raises(ValueError, match="0 vectors"):
            IVFPQIndex().build(np.zeros((0, 4)))
        with pytest.raises(ValueError, match="num_lists"):
            IVFPQIndex(num_lists=0)
        with pytest.raises(ValueError, match="nprobe"):
            IVFPQIndex(nprobe=0)

    def test_list_sizes_cover_table(self):
        emb, _ = _clustered()
        nn = IVFPQIndex(num_lists=8, nprobe=2).build(emb)
        sizes = nn.list_sizes()
        assert sizes.sum() == len(emb)
        assert (sizes >= 0).all()

    @pytest.mark.parametrize("comparator", ["dot", "cos", "l2"])
    def test_full_probe_bit_identical(self, comparator):
        emb, _ = _clustered()
        exact = ExactIndex(emb, comparator, chunk_size=97)
        ivf = IVFPQIndex(
            comparator=comparator, num_lists=8, nprobe=8, chunk_size=97
        ).build(emb)
        q = emb[::7]
        ei, es = exact.query(q, k=9, exclude_self=np.arange(0, len(emb), 7))
        ai, ascores = ivf.query(
            q, k=9, exclude_self=np.arange(0, len(emb), 7)
        )
        np.testing.assert_array_equal(ei, ai)
        np.testing.assert_array_equal(es, ascores)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(5, 60),
        d=st.integers(2, 12),
        k=st.integers(1, 5),
        num_lists=st.integers(1, 6),
        comparator=st.sampled_from(["dot", "cos", "l2"]),
        seed=st.integers(0, 2**16),
    )
    def test_property_full_probe_equivalence(
        self, n, d, k, num_lists, comparator, seed
    ):
        """nprobe = num_lists + PQ off == ExactIndex, bit for bit."""
        rng = np.random.default_rng(seed)
        emb = rng.standard_normal((n, d)).astype(np.float32)
        exact = ExactIndex(emb, comparator, chunk_size=13)
        ivf = IVFPQIndex(
            comparator=comparator,
            num_lists=num_lists,
            nprobe=num_lists,
            seed=seed,
            chunk_size=13,
        ).build(emb)
        q = emb[: min(4, n)]
        ei, es = exact.query(q, k=min(k, n))
        ai, ascores = ivf.query(q, k=min(k, n))
        np.testing.assert_array_equal(ei, ai)
        np.testing.assert_array_equal(es, ascores)

    @pytest.mark.parametrize("comparator", ["dot", "cos", "l2"])
    def test_recall_regression_clustered(self, comparator):
        """The headline gate: recall@10 >= 0.95 at nprobe << num_lists."""
        emb, _ = _clustered(n_per=40, c=16, d=16, seed=1)
        rng = np.random.default_rng(2)
        q = emb[rng.choice(len(emb), 64, replace=False)]
        true_idx, _ = ExactIndex(emb, comparator).query(q, k=10)
        ivf = IVFPQIndex(
            comparator=comparator, num_lists=16, nprobe=4
        ).build(emb)
        idx, _ = ivf.query(q, k=10)
        assert _overlap_recall(idx, true_idx) >= 0.95

    def test_padding_sentinels(self):
        # Two tight, far-apart blobs; nprobe=1 sees only one of them,
        # so k beyond the probed list's size pads with -1 / -inf.
        rng = np.random.default_rng(0)
        a = rng.standard_normal((10, 4)) * 0.1 + 100.0
        b = rng.standard_normal((10, 4)) * 0.1 - 100.0
        emb = np.vstack([a, b]).astype(np.float32)
        nn = IVFPQIndex(
            comparator="l2", num_lists=2, nprobe=1, kmeans_iters=20
        ).build(emb)
        assert sorted(nn.list_sizes()) == [10, 10]
        idx, scores = nn.query(emb[:1], k=15)
        assert (idx[0] == -1).sum() == 5
        assert np.isinf(scores[0][idx[0] == -1]).all()
        assert (idx[0][idx[0] >= 0] < 10).all()  # own blob only

    def test_exclude_self_in_probe_path(self):
        emb, _ = _clustered()
        nn = IVFPQIndex(num_lists=8, nprobe=3).build(emb)
        ids = np.arange(0, 32)
        idx, _ = nn.query(emb[:32], k=5, exclude_self=ids)
        assert not (idx == ids[:, None]).any()

    def test_pq_shrinks_memory(self):
        # Large enough that codes dominate the fixed codebook cost.
        emb, _ = _clustered(n_per=250, c=16, d=16)
        plain = IVFPQIndex(num_lists=8, nprobe=2).build(emb)
        pq = IVFPQIndex(
            num_lists=8, nprobe=2, pq_subvectors=4
        ).build(emb)
        assert pq.nbytes() < 0.5 * plain.nbytes()

    def test_refine_improves_pq_recall(self):
        emb, _ = _clustered(n_per=40, c=16, d=16, seed=4)
        rng = np.random.default_rng(5)
        q = emb[rng.choice(len(emb), 48, replace=False)]
        true_idx, _ = ExactIndex(emb, "cos").query(q, k=10)
        kw = dict(
            comparator="cos", num_lists=16, nprobe=6, pq_subvectors=4
        )
        plain_idx, _ = IVFPQIndex(**kw).build(emb).query(q, k=10)
        ref_idx, _ = IVFPQIndex(refine=4, **kw).build(emb).query(q, k=10)
        plain = _overlap_recall(plain_idx, true_idx)
        refined = _overlap_recall(ref_idx, true_idx)
        assert refined >= plain
        assert refined >= 0.9

    def test_refined_scores_are_exact(self):
        emb, _ = _clustered()
        nn = IVFPQIndex(
            comparator="dot", num_lists=4, nprobe=4,
            pq_subvectors=4, refine=3,
        ).build(emb)
        idx, scores = nn.query(emb[:5], k=3)
        for i in range(5):
            for j, s in zip(idx[i], scores[i]):
                if j >= 0:
                    assert s == pytest.approx(
                        float(emb[i] @ emb[j]), rel=1e-5
                    )

    def test_deterministic_given_seed(self):
        emb, _ = _clustered()
        a = IVFPQIndex(num_lists=8, nprobe=2, seed=3).build(emb)
        b = IVFPQIndex(num_lists=8, nprobe=2, seed=3).build(emb)
        ia, sa = a.query(emb[:10], k=5)
        ib, sb = b.query(emb[:10], k=5)
        np.testing.assert_array_equal(ia, ib)
        np.testing.assert_array_equal(sa, sb)

    def test_build_from_mmap_table_matches_array(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb, comparator="cos")
        table = MmapShardedTable.open(tmp_path)
        from_table = IVFPQIndex(num_lists=8, nprobe=3).build(table)
        from_array = IVFPQIndex(num_lists=8, nprobe=3).build(emb)
        ti, ts = from_table.query(emb[:8], k=5)
        ai, ascores = from_array.query(emb[:8], k=5)
        np.testing.assert_array_equal(ti, ai)
        np.testing.assert_array_equal(ts, ascores)
        table.close()


# ----------------------------------------------------------------------
# Shard publishing + mmap tables
# ----------------------------------------------------------------------


class TestShards:
    def test_publish_and_open(self, tmp_path):
        emb, _ = _clustered()
        assert current_version(tmp_path) is None
        assert list_versions(tmp_path) == []
        v = publish_embeddings(tmp_path, emb, comparator="dot")
        assert v == 1
        assert current_version(tmp_path) == 1
        table = MmapShardedTable.open(tmp_path)
        assert table.version == 1
        assert table.comparator == "dot"
        assert table.num_items == len(emb)
        assert table.dim == emb.shape[1]
        np.testing.assert_array_equal(table.as_array(), emb)
        assert table.nbytes_on_disk() >= emb.nbytes
        table.close()

    def test_versions_increment(self, tmp_path):
        emb, _ = _clustered()
        assert publish_embeddings(tmp_path, emb) == 1
        assert publish_embeddings(tmp_path, emb * 2) == 2
        assert list_versions(tmp_path) == [1, 2]
        assert current_version(tmp_path) == 2
        # Old versions stay immutable and openable.
        old = MmapShardedTable(tmp_path / "v-000001")
        np.testing.assert_array_equal(old.as_array(), emb)
        old.close()

    def test_no_staging_debris(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb)
        leftovers = [p.name for p in tmp_path.glob(".tmp-*")]
        assert leftovers == []

    def test_gather(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb)
        table = MmapShardedTable.open(tmp_path)
        ids = np.asarray([3, 0, 77, 3])
        np.testing.assert_array_equal(table.gather(ids), emb[ids])
        with pytest.raises(ValueError, match="ids must be in"):
            table.gather(np.asarray([len(emb)]))
        with pytest.raises(ValueError, match="ids must be in"):
            table.gather(np.asarray([-1]))
        table.close()

    def test_close_idempotent_then_raises(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb)
        table = MmapShardedTable.open(tmp_path)
        table.close()
        table.close()
        with pytest.raises(ServingError, match="closed"):
            table.gather(np.asarray([0]))
        with pytest.raises(ServingError, match="closed"):
            table.as_array()

    def test_corrupt_current_pointer(self, tmp_path):
        (tmp_path / "CURRENT").write_text("garbage\n")
        with pytest.raises(ServingError, match="corrupt CURRENT"):
            current_version(tmp_path)

    def test_open_without_publish(self, tmp_path):
        with pytest.raises(ServingError, match="no published snapshot"):
            MmapShardedTable.open(tmp_path)

    def test_multi_shard_permuted_layout(self, tmp_path):
        """Hand-built 2-shard snapshot with a scrambled id layout."""
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((20, 4)).astype(np.float32)
        part_of = rng.integers(0, 2, 20)
        offset_of = np.empty(20, dtype=np.int64)
        shards = []
        for p in range(2):
            members = np.flatnonzero(part_of == p)
            offset_of[members] = np.arange(len(members))
            shards.append(emb[members])
        vdir = tmp_path / "v-000001"
        vdir.mkdir(parents=True)
        for p, shard in enumerate(shards):
            np.save(vdir / f"shard-{p:05d}.npy", shard)
        np.save(vdir / "layout_part.npy", part_of.astype(np.int64))
        np.save(vdir / "layout_offset.npy", offset_of)
        (vdir / MANIFEST_NAME).write_text(json.dumps({
            "version": 1, "entity_type": "node", "comparator": "cos",
            "dim": 4, "count": 20, "source": {},
            "shards": [
                {"part": p, "rows": len(s), "file": f"shard-{p:05d}.npy"}
                for p, s in enumerate(shards)
            ],
        }))
        (tmp_path / "CURRENT").write_text("v-000001\n")
        table = MmapShardedTable.open(tmp_path)
        assert not table._identity_layout
        np.testing.assert_array_equal(table.as_array(), emb)
        ids = np.asarray([19, 0, 7, 7, 12])
        np.testing.assert_array_equal(table.gather(ids), emb[ids])
        table.close()

    def test_shard_shape_mismatch_rejected(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb)
        vdir = tmp_path / "v-000001"
        manifest = json.loads((vdir / MANIFEST_NAME).read_text())
        manifest["shards"][0]["rows"] += 1
        (vdir / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ServingError, match="does not\\s+match manifest"):
            MmapShardedTable.open(tmp_path)

    def test_export_mmap_unit(self, tmp_path):
        from repro.graph.storage import (
            PartitionedEmbeddingStorage,
            StorageError,
        )

        store = PartitionedEmbeddingStorage(tmp_path / "parts")
        rng = np.random.default_rng(0)
        for p, rows in enumerate((6, 9)):
            emb = rng.standard_normal((rows, 4)).astype(np.float32)
            store.save("node", p, emb, np.zeros(rows, dtype=np.float32))
        shards, dim = store.export_mmap("node", tmp_path / "out")
        assert dim == 4
        assert [s["rows"] for s in shards] == [6, 9]
        for s in shards:
            arr = np.load(tmp_path / "out" / s["file"], mmap_mode="r")
            assert arr.shape == (s["rows"], 4)
            assert arr.dtype == np.float32
        with pytest.raises(StorageError, match="no stored partitions"):
            store.export_mmap("ghost", tmp_path / "out2")

    def test_missing_shard_for_layout_part_rejected(self, tmp_path):
        """A layout that points at an absent shard must fail open()."""
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((8, 4)).astype(np.float32)
        vdir = tmp_path / "v-000001"
        vdir.mkdir(parents=True)
        np.save(vdir / "shard-00000.npy", emb)
        part_of = np.zeros(8, dtype=np.int64)
        part_of[3] = 1  # references shard 1, which does not exist
        np.save(vdir / "layout_part.npy", part_of)
        np.save(vdir / "layout_offset.npy", np.arange(8, dtype=np.int64))
        (vdir / MANIFEST_NAME).write_text(json.dumps({
            "version": 1, "entity_type": "node", "comparator": "cos",
            "dim": 4, "count": 8, "source": {},
            "shards": [{"part": 0, "rows": 8, "file": "shard-00000.npy"}],
        }))
        (tmp_path / "CURRENT").write_text("v-000001\n")
        with pytest.raises(ServingError, match=r"no shard for.*\[1\]"):
            MmapShardedTable.open(tmp_path)

    @staticmethod
    def _partitioned_checkpoint(root, num_parts=4, n=40, d=8):
        """A checkpoint whose own store holds only the last-resident
        partition while the training swap store holds the full state —
        the on-disk shape partitioned training actually leaves behind.
        """
        from repro.config import single_entity_config
        from repro.graph.storage import (
            CheckpointStorage,
            PartitionedEmbeddingStorage,
        )

        rng = np.random.default_rng(0)
        emb = rng.standard_normal((n, d)).astype(np.float32)
        part_of = rng.integers(0, num_parts, n)
        part_of[:num_parts] = np.arange(num_parts)  # every part non-empty
        offset_of = np.empty(n, dtype=np.int64)
        ckpt = CheckpointStorage(root)
        ckpt.save_config(
            single_entity_config(num_partitions=num_parts, dimension=d)
            .to_json()
        )
        ckpt.save_metadata({"epoch": 0, "counts": {"node": n}})
        swap = PartitionedEmbeddingStorage(root / "swap")
        for p in range(num_parts):
            members = np.flatnonzero(part_of == p)
            offset_of[members] = np.arange(len(members))
            swap.save("node", p, emb[members],
                      np.zeros(len(members), dtype=np.float32))
        ckpt.save_shared({
            "layout_node_part": part_of.astype(np.int64),
            "layout_node_offset": offset_of,
        })
        last = num_parts - 1
        members = np.flatnonzero(part_of == last)
        ckpt.partitions.save("node", last, emb[members],
                             np.zeros(len(members), dtype=np.float32))
        return emb

    def test_publish_checkpoint_falls_back_to_swap_store(self, tmp_path):
        from repro.serving import publish_checkpoint

        emb = self._partitioned_checkpoint(tmp_path / "ckpt")
        version = publish_checkpoint(tmp_path / "snap", tmp_path / "ckpt",
                                     "node")
        assert version == 1
        table = MmapShardedTable.open(tmp_path / "snap")
        assert not table._identity_layout
        np.testing.assert_array_equal(table.as_array(), emb)
        ids = np.asarray([0, 17, 39, 17])
        np.testing.assert_array_equal(table.gather(ids), emb[ids])
        table.close()

    def test_publish_checkpoint_partition_missing_everywhere(self, tmp_path):
        from repro.serving import publish_checkpoint

        self._partitioned_checkpoint(tmp_path / "ckpt")
        (tmp_path / "ckpt" / "swap" / "node" / "part-00001.npz").unlink()
        with pytest.raises(ServingError, match=r"missing partition\(s\) \[1\]"):
            publish_checkpoint(tmp_path / "snap", tmp_path / "ckpt", "node")


# ----------------------------------------------------------------------
# Snapshot manager: refcounted atomic swap
# ----------------------------------------------------------------------


class TestSnapshotManager:
    def test_refresh_without_publish(self, tmp_path):
        manager = SnapshotManager(tmp_path)
        assert manager.refresh() is False
        assert manager.current_version() is None
        with pytest.raises(ServingError, match="no snapshot loaded"):
            with manager.acquire():
                pass

    def test_refresh_and_query(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb, comparator="cos")
        manager = SnapshotManager(tmp_path)
        assert manager.refresh() is True
        assert manager.refresh() is False  # already current
        assert manager.current_version() == 1
        with manager.acquire() as snap:
            idx, _ = snap.index.query(emb[:2], k=3)
            assert idx.shape == (2, 3)
        manager.close()

    def test_swap_retires_and_drains(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb)
        manager = SnapshotManager(tmp_path)
        manager.refresh()
        with manager.acquire() as snap:
            assert snap.version == 1
            publish_embeddings(tmp_path, emb * 2)
            assert manager.refresh() is True
            assert manager.current_version() == 2
            # The pinned v1 survives the swap, fully usable.
            assert manager.retired_count() == 1
            np.testing.assert_array_equal(
                snap.table.as_array(), emb
            )
        # Releasing the last pin closed the retired snapshot.
        assert manager.retired_count() == 0
        with pytest.raises(ServingError, match="closed"):
            snap.table.as_array()
        manager.close()

    def test_unpinned_swap_closes_immediately(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb)
        manager = SnapshotManager(tmp_path)
        manager.refresh()
        with manager.acquire() as snap:
            pass
        publish_embeddings(tmp_path, emb * 2)
        manager.refresh()
        assert manager.retired_count() == 0
        with pytest.raises(ServingError, match="closed"):
            snap.table.gather(np.asarray([0]))
        manager.close()

    def test_custom_index_factory(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb)
        built = []

        def factory(table):
            idx = IVFPQIndex(num_lists=4, nprobe=4).build(table)
            built.append(idx)
            return idx

        manager = SnapshotManager(tmp_path, index_factory=factory)
        manager.refresh()
        with manager.acquire() as snap:
            assert snap.index is built[0]
        manager.close()

    def test_close_releases_everything(self, tmp_path):
        emb, _ = _clustered()
        publish_embeddings(tmp_path, emb)
        manager = SnapshotManager(tmp_path)
        manager.refresh()
        manager.close()
        assert manager.current_version() is None
        with pytest.raises(ServingError, match="no snapshot loaded"):
            with manager.acquire():
                pass


# ----------------------------------------------------------------------
# Query service + the swap race
# ----------------------------------------------------------------------


class TestQueryService:
    def _served(self, tmp_path, emb, **kw):
        publish_embeddings(tmp_path, emb, comparator="dot")
        manager = SnapshotManager(tmp_path)
        manager.refresh()
        return manager, QueryService(manager, **kw)

    def test_validation(self, tmp_path):
        manager = SnapshotManager(tmp_path)
        with pytest.raises(ValueError, match="batch_size"):
            QueryService(manager, batch_size=0)
        with pytest.raises(ValueError, match="default_k"):
            QueryService(manager, default_k=0)

    def test_batching_matches_unbatched(self, tmp_path):
        emb, _ = _clustered()
        manager, service = self._served(tmp_path, emb, batch_size=7)
        idx, scores = service.query(emb[:20], k=4)
        ei, es = ExactIndex(emb, "dot").query(emb[:20], k=4)
        np.testing.assert_array_equal(idx, ei)
        np.testing.assert_array_equal(scores, es)
        stats = service.stats()
        assert stats.queries == 20
        assert stats.batches == 3  # ceil(20 / 7)
        assert stats.version == 1
        assert "QPS" in stats.summary()
        manager.close()

    def test_exclude_self_sliced_with_batches(self, tmp_path):
        emb, _ = _clustered()
        manager, service = self._served(tmp_path, emb, batch_size=5)
        ids = np.arange(17)
        idx, _ = service.query(emb[:17], k=6, exclude_self=ids)
        assert not (idx == ids[:, None]).any()
        manager.close()

    def test_default_k(self, tmp_path):
        emb, _ = _clustered()
        manager, service = self._served(tmp_path, emb, default_k=3)
        idx, _ = service.query(emb[:2])
        assert idx.shape == (2, 3)
        manager.close()

    def test_query_pinned_reports_version(self, tmp_path):
        emb, _ = _clustered()
        manager, service = self._served(tmp_path, emb)
        idx, scores, version = service.query_pinned(emb[:3], k=2)
        assert version == 1
        assert idx.shape == (3, 2)
        manager.close()

    def test_auto_refresh_picks_up_new_version(self, tmp_path):
        emb, _ = _clustered()
        manager, service = self._served(
            tmp_path, emb, batch_size=4, auto_refresh=True
        )
        publish_embeddings(tmp_path, emb * 2, comparator="dot")
        assert manager.current_version() == 1
        service.query(emb[:12], k=3)  # 3 batches -> refresh between
        assert manager.current_version() == 2
        manager.close()

    def test_swap_race_never_mixed_view(self, tmp_path):
        """Readers racing publishes always see a consistent snapshot.

        Version v serves the base table scaled by ``2**(v-1)``.
        Scaling by a power of two is exact in fp32 and commutes with
        every float op in the scan, so a reader that claims "answered
        by version v" must return **exactly** ``2**(v-1)`` times the
        v1 scores — any mix of old index with new table (or vice
        versa) breaks the equality. Runs under the lockdep harness
        when REPRO_LOCKDEP=1 (CI) is set.
        """
        base, _ = _clustered(n_per=20, c=4, d=8)
        queries = base[::5]
        publish_embeddings(tmp_path, base, comparator="dot")
        manager = SnapshotManager(tmp_path)
        manager.refresh()
        service = QueryService(manager)
        base_idx, base_scores, v = service.query_pinned(queries, k=5)
        assert v == 1

        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    idx, scores, ver = service.query_pinned(queries, k=5)
                    expect = base_scores * (2.0 ** (ver - 1))
                    if not np.array_equal(scores, expect):
                        errors.append(
                            f"v{ver}: scores do not match the "
                            f"claimed version"
                        )
                        return
                    if not np.array_equal(idx, base_idx):
                        errors.append(f"v{ver}: indices changed")
                        return
                except Exception as exc:  # pragma: no cover
                    errors.append(repr(exc))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for version in range(2, 7):
                publish_embeddings(
                    tmp_path,
                    base * np.float32(2.0 ** (version - 1)),
                    comparator="dot",
                )
                assert manager.refresh() is True
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert errors == []
        # All retired snapshots drained and closed once readers left.
        assert manager.retired_count() == 0
        assert manager.current_version() == 6
        stats = service.stats()
        assert stats.swaps == 6  # initial load + 5 republishes
        manager.close()


# ----------------------------------------------------------------------
# ServingConfig + make_index
# ----------------------------------------------------------------------


class TestServingConfig:
    def test_defaults_valid(self):
        cfg = ServingConfig()
        assert cfg.index == "exact"

    def test_validation(self):
        with pytest.raises(ConfigError, match="unknown serving index"):
            ServingConfig(index="faiss")
        with pytest.raises(ConfigError, match="num_lists"):
            ServingConfig(num_lists=0)
        with pytest.raises(ConfigError, match="nprobe"):
            ServingConfig(num_lists=4, nprobe=5)
        with pytest.raises(ConfigError, match="refine"):
            ServingConfig(refine=2)  # refine without PQ
        with pytest.raises(ConfigError, match="batch_size"):
            ServingConfig(batch_size=0)

    def test_schema_roundtrip(self):
        from repro.config import EntitySchema, RelationSchema

        cfg = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[RelationSchema(
                name="r", lhs="node", rhs="node", operator="identity"
            )],
            dimension=16,
            serving=ServingConfig(
                index="ivfpq", num_lists=8, nprobe=2, pq_subvectors=4,
                refine=2,
            ),
        )
        back = ConfigSchema.from_json(cfg.to_json())
        assert back.serving == cfg.serving
        assert back.serving.index == "ivfpq"

    def test_pq_must_divide_dimension(self):
        from repro.config import EntitySchema, RelationSchema

        with pytest.raises(ConfigError, match="pq_subvectors"):
            ConfigSchema(
                entities={"node": EntitySchema()},
                relations=[RelationSchema(
                    name="r", lhs="node", rhs="node", operator="identity"
                )],
                dimension=10,
                serving=ServingConfig(
                    index="ivfpq", pq_subvectors=4
                ),
            )

    def test_make_index(self):
        exact = make_index(ServingConfig(index="exact"), "l2")
        assert isinstance(exact, ExactIndex)
        ivf = make_index(
            ServingConfig(index="ivfpq", num_lists=7, nprobe=3), "dot"
        )
        assert isinstance(ivf, IVFPQIndex)
        assert ivf.num_lists == 7 and ivf.nprobe == 3
        assert ivf.comparator == "dot"


# ----------------------------------------------------------------------
# Eval helpers built on the KnnIndex protocol
# ----------------------------------------------------------------------


class TestEvalIntegration:
    def test_retrieval_recall_exact_self(self):
        emb, _ = _clustered()
        index = ExactIndex(emb, "cos")
        # Querying with the table's own rows: self is always rank 1.
        recall = retrieval_recall(
            index, emb[:30], np.arange(30), k=1
        )
        assert recall == 1.0

    def test_retrieval_recall_accepts_any_index(self):
        emb, _ = _clustered()
        queries = emb[:30]
        exact = retrieval_recall(
            ExactIndex(emb, "cos"), queries, np.arange(30), k=10
        )
        approx = retrieval_recall(
            IVFPQIndex(num_lists=16, nprobe=4).build(emb),
            queries, np.arange(30), k=10,
        )
        assert exact == 1.0
        assert approx >= 0.9

    def test_knn_predict_labels_clustered(self):
        emb, labels = _clustered(n_per=30, c=4, d=8)
        onehot = np.zeros((len(emb), 4), dtype=bool)
        onehot[np.arange(len(emb)), labels] = True
        index = ExactIndex(emb, "cos")
        pred = knn_predict_labels(
            index, emb, onehot, np.ones(len(emb)),
            k=5, exclude_self=np.arange(len(emb)),
        )
        assert (pred == onehot).all(axis=1).mean() > 0.95

    def test_knn_predict_labels_ignores_padding(self):
        # An approximate index that pads with -1 must not let the pad
        # rows vote.
        rng = np.random.default_rng(0)
        a = rng.standard_normal((10, 4)) * 0.1 + 100.0
        b = rng.standard_normal((10, 4)) * 0.1 - 100.0
        emb = np.vstack([a, b]).astype(np.float32)
        labels = np.zeros((20, 2), dtype=bool)
        labels[:10, 0] = True
        labels[10:, 1] = True
        nn = IVFPQIndex(
            comparator="l2", num_lists=2, nprobe=1, kmeans_iters=20
        ).build(emb)
        pred = knn_predict_labels(
            nn, emb[:3], labels, np.ones(3), k=15
        )
        np.testing.assert_array_equal(pred[:, 0], [True] * 3)
        np.testing.assert_array_equal(pred[:, 1], [False] * 3)

    def test_evaluate_candidate_generation(self):
        from repro.config import EntitySchema, RelationSchema
        from repro.core.model import EmbeddingModel
        from repro.eval.ranking import evaluate_candidate_generation
        from repro.graph.edgelist import EdgeList
        from repro.graph.entity_storage import EntityStorage

        config = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[RelationSchema(
                name="link", lhs="node", rhs="node", operator="identity"
            )],
            dimension=8,
        )
        entities = EntityStorage({"node": 40})
        model = EmbeddingModel(
            config, entities, np.random.default_rng(0)
        )
        model.init_all_partitions(np.random.default_rng(0))
        edges = EdgeList.from_tuples(
            [(i, 0, (i + 1) % 40) for i in range(40)]
        )
        out = evaluate_candidate_generation(model, edges, k=10)
        assert set(out) == {"link"}
        assert 0.0 <= out["link"] <= 1.0
        # Full-coverage k: every true destination must be found.
        out_full = evaluate_candidate_generation(model, edges, k=39)
        assert out_full["link"] == 1.0


# ----------------------------------------------------------------------
# CLI: export --format mmap / serve / query
# ----------------------------------------------------------------------


class TestServingCLI:
    @pytest.fixture
    def trained(self, tmp_path):
        from repro.cli import main, save_edges
        from repro.config import EntitySchema, RelationSchema
        from repro.graph.edgelist import EdgeList

        n = 60
        rng = np.random.default_rng(0)
        src = np.concatenate([np.arange(n), rng.integers(0, n, 300)])
        dst = np.concatenate(
            [(np.arange(n) + 1) % n,
             (src[n:] + rng.integers(1, 3, 300)) % n]
        )
        edges = EdgeList(src, np.zeros(len(src), dtype=np.int64), dst)
        config = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[RelationSchema(
                name="next", lhs="node", rhs="node", operator="identity"
            )],
            dimension=8, num_epochs=2, batch_size=120, chunk_size=60,
            num_batch_negs=10, num_uniform_negs=10, lr=0.1,
        )
        config_path = tmp_path / "config.json"
        config_path.write_text(config.to_json())
        edges_path = tmp_path / "train.npz"
        save_edges(edges_path, edges)
        ckpt = tmp_path / "model"
        assert main([
            "train", "--config", str(config_path),
            "--edges", str(edges_path), "--checkpoint", str(ckpt),
        ]) == 0
        return tmp_path, ckpt

    def test_export_mmap_and_query(self, trained, capsys):
        from repro.cli import main

        tmp_path, ckpt = trained
        snaps = tmp_path / "snaps"
        rc = main([
            "export", "--checkpoint", str(ckpt),
            "--entity-type", "node", "--output", str(snaps),
            "--format", "mmap",
        ])
        assert rc == 0
        assert "published snapshot v1" in capsys.readouterr().out
        assert (snaps / "v-000001" / MANIFEST_NAME).exists()

        rc = main([
            "query", "--snapshots", str(snaps), "--ids", "0,5",
            "--k", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "snapshot v1, top-3:" in out
        assert "  0: " in out and "  5: " in out

    def test_serve_exact_vs_full_probe_ivf(self, trained, capsys):
        from repro.cli import main

        tmp_path, ckpt = trained
        snaps = tmp_path / "snaps"
        main([
            "export", "--checkpoint", str(ckpt),
            "--entity-type", "node", "--output", str(snaps),
            "--format", "mmap",
        ])
        queries = tmp_path / "queries.npy"
        table = MmapShardedTable.open(snaps)
        np.save(queries, np.asarray(table.as_array()[:10]))
        table.close()
        capsys.readouterr()

        out_exact = tmp_path / "exact.npz"
        rc = main([
            "serve", "--snapshots", str(snaps),
            "--queries", str(queries), "--k", "4",
            "--index", "exact", "--output", str(out_exact),
        ])
        assert rc == 0
        assert "index: exact over 60 items" in capsys.readouterr().out

        out_ivf = tmp_path / "ivf.npz"
        rc = main([
            "serve", "--snapshots", str(snaps),
            "--queries", str(queries), "--k", "4",
            "--index", "ivfpq", "--num-lists", "4", "--nprobe", "4",
            "--output", str(out_ivf),
        ])
        assert rc == 0
        assert "index: ivfpq" in capsys.readouterr().out

        with np.load(out_exact) as e, np.load(out_ivf) as a:
            # Full probe, PQ off: the approximate CLI path is
            # bit-identical to the exact one.
            np.testing.assert_array_equal(e["indices"], a["indices"])
            np.testing.assert_array_equal(e["scores"], a["scores"])

    def test_serve_without_snapshot_errors(self, tmp_path, capsys):
        from repro.cli import main

        queries = tmp_path / "q.npy"
        np.save(queries, np.zeros((1, 4), dtype=np.float32))
        rc = main([
            "serve", "--snapshots", str(tmp_path / "missing"),
            "--queries", str(queries),
        ])
        assert rc == 2
        assert "no published snapshot" in capsys.readouterr().err

    def test_export_mmap_unknown_entity(self, trained, capsys):
        from repro.cli import main

        tmp_path, ckpt = trained
        with pytest.raises(ServingError, match="not in checkpoint"):
            main([
                "export", "--checkpoint", str(ckpt),
                "--entity-type", "ghost",
                "--output", str(tmp_path / "snaps"),
                "--format", "mmap",
            ])
