"""Tests for the configuration schema."""

import pytest

from repro.config import (
    ConfigSchema,
    EntitySchema,
    RelationSchema,
    single_entity_config,
)


def _minimal(**kw):
    return ConfigSchema(
        entities={"node": EntitySchema()},
        relations=[RelationSchema(name="r", lhs="node", rhs="node")],
        **kw,
    )


class TestEntitySchema:
    def test_defaults(self):
        e = EntitySchema()
        assert e.num_partitions == 1 and not e.featurized

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            EntitySchema(num_partitions=0)

    def test_featurized_needs_features(self):
        with pytest.raises(ValueError):
            EntitySchema(featurized=True)
        EntitySchema(featurized=True, num_features=10)  # ok

    def test_featurized_cannot_partition(self):
        with pytest.raises(ValueError):
            EntitySchema(featurized=True, num_features=5, num_partitions=2)

    def test_features_only_for_featurized(self):
        with pytest.raises(ValueError):
            EntitySchema(num_features=5)


class TestRelationSchema:
    def test_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown operator"):
            RelationSchema(name="r", lhs="a", rhs="b", operator="warp")

    def test_nonpositive_weight(self):
        with pytest.raises(ValueError):
            RelationSchema(name="r", lhs="a", rhs="b", weight=0.0)


class TestConfigSchema:
    def test_minimal_valid(self):
        cfg = _minimal()
        assert cfg.dimension == 100
        assert cfg.num_buckets() == 1

    def test_unknown_entity_reference(self):
        with pytest.raises(ValueError, match="unknown lhs entity"):
            ConfigSchema(
                entities={"node": EntitySchema()},
                relations=[RelationSchema(name="r", lhs="ghost", rhs="node")],
            )

    def test_duplicate_relation_names(self):
        with pytest.raises(ValueError, match="unique"):
            ConfigSchema(
                entities={"node": EntitySchema()},
                relations=[
                    RelationSchema(name="r", lhs="node", rhs="node"),
                    RelationSchema(name="r", lhs="node", rhs="node"),
                ],
            )

    def test_complex_requires_even_dimension(self):
        with pytest.raises(ValueError, match="even dimension"):
            ConfigSchema(
                entities={"node": EntitySchema()},
                relations=[
                    RelationSchema(
                        name="r", lhs="node", rhs="node",
                        operator="complex_diagonal",
                    )
                ],
                dimension=7,
            )

    def test_no_negatives_rejected(self):
        with pytest.raises(ValueError, match="at least one source"):
            _minimal(num_batch_negs=0, num_uniform_negs=0)

    def test_chunk_larger_than_batch(self):
        with pytest.raises(ValueError, match="chunk_size"):
            _minimal(batch_size=10, chunk_size=20)

    def test_distributed_needs_enough_partitions(self):
        with pytest.raises(ValueError, match="P/2"):
            ConfigSchema(
                entities={"node": EntitySchema(num_partitions=2)},
                relations=[RelationSchema(name="r", lhs="node", rhs="node")],
                num_machines=2,
            )
        # 4 partitions for 2 machines is fine.
        ConfigSchema(
            entities={"node": EntitySchema(num_partitions=4)},
            relations=[RelationSchema(name="r", lhs="node", rhs="node")],
            num_machines=2,
        )

    def test_num_buckets_grid(self):
        cfg = ConfigSchema(
            entities={"node": EntitySchema(num_partitions=4)},
            relations=[RelationSchema(name="r", lhs="node", rhs="node")],
        )
        assert cfg.num_buckets() == 16

    def test_num_buckets_one_sided(self):
        cfg = ConfigSchema(
            entities={
                "user": EntitySchema(num_partitions=4),
                "item": EntitySchema(),
            },
            relations=[RelationSchema(name="buys", lhs="user", rhs="item")],
        )
        assert cfg.num_buckets() == 4

    def test_relation_index(self):
        cfg = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[
                RelationSchema(name="a", lhs="node", rhs="node"),
                RelationSchema(name="b", lhs="node", rhs="node"),
            ],
        )
        assert cfg.relation_index("b") == 1
        with pytest.raises(KeyError):
            cfg.relation_index("zzz")

    def test_relation_lr_default(self):
        assert _minimal(lr=0.3).relation_lr_effective == 0.3
        assert _minimal(lr=0.3, relation_lr=0.01).relation_lr_effective == 0.01

    def test_json_roundtrip(self):
        cfg = ConfigSchema(
            entities={
                "user": EntitySchema(num_partitions=8),
                "tag": EntitySchema(featurized=True, num_features=64),
            },
            relations=[
                RelationSchema(
                    name="likes", lhs="user", rhs="tag",
                    operator="diagonal", weight=2.0,
                )
            ],
            dimension=32,
            loss="softmax",
            bucket_order="chained",
        )
        restored = ConfigSchema.from_json(cfg.to_json())
        assert restored == cfg

    def test_replace(self):
        cfg = _minimal(dimension=16)
        cfg2 = cfg.replace(dimension=32, lr=0.5)
        assert cfg2.dimension == 32 and cfg2.lr == 0.5
        assert cfg.dimension == 16  # original untouched

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            _minimal().replace(dimension=-1)

    def test_single_entity_config(self):
        cfg = single_entity_config(
            num_partitions=4, operator="translation",
            relation_names=("a", "b"), dimension=10,
        )
        assert set(cfg.entities) == {"node"}
        assert [r.name for r in cfg.relations] == ["a", "b"]
        assert all(r.operator == "translation" for r in cfg.relations)
        assert cfg.num_buckets() == 16

    def test_eval_fraction_bounds(self):
        with pytest.raises(ValueError):
            _minimal(eval_fraction=1.0)
        _minimal(eval_fraction=0.05)

    def test_bad_bucket_order(self):
        with pytest.raises(ValueError, match="bucket_order"):
            _minimal(bucket_order="spiral")


class TestPartitionCompressionConfig:
    def test_defaults(self):
        cfg = _minimal()
        assert cfg.partition_compression == "none"
        assert cfg.writeback_delta is False

    def test_valid_codecs_accepted(self):
        for name in ("none", "fp16", "int8"):
            assert _minimal(
                partition_compression=name
            ).partition_compression == name

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="partition_compression"):
            _minimal(partition_compression="zstd")

    def test_roundtrips_through_json(self):
        cfg = _minimal(partition_compression="int8", writeback_delta=True)
        again = ConfigSchema.from_json(cfg.to_json())
        assert again.partition_compression == "int8"
        assert again.writeback_delta is True
