"""Tests for the DeepWalk and MILE baselines."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.adapter import embeddings_to_model
from repro.baselines.deepwalk import DeepWalk, build_adjacency, random_walks
from repro.baselines.mile import MILE, coarsen_graph, heavy_edge_matching
from repro.eval.ranking import LinkPredictionEvaluator
from repro.graph.edgelist import EdgeList


def _two_cliques(k=15):
    """Two dense cliques joined by one bridge edge."""
    edges = []
    for a in range(k):
        for b in range(a + 1, k):
            edges.append((a, 0, b))
            edges.append((a + k, 0, b + k))
    edges.append((0, 0, k))
    return EdgeList.from_tuples(edges), 2 * k


class TestBuildAdjacency:
    def test_symmetrised(self):
        edges = EdgeList.from_tuples([(0, 0, 1)])
        adj = build_adjacency(edges, 3)
        assert adj[0, 1] == 1 and adj[1, 0] == 1

    def test_directed(self):
        edges = EdgeList.from_tuples([(0, 0, 1)])
        adj = build_adjacency(edges, 3, undirected=False)
        assert adj[0, 1] == 1 and adj[1, 0] == 0

    def test_duplicate_edges_weighted(self):
        edges = EdgeList.from_tuples([(0, 0, 1), (0, 0, 1)])
        adj = build_adjacency(edges, 2)
        assert adj[0, 1] == 2


class TestRandomWalks:
    def test_shape_and_validity(self):
        edges, n = _two_cliques()
        adj = build_adjacency(edges, n)
        starts = np.arange(n, dtype=np.int64)
        walks = random_walks(adj, 10, starts, np.random.default_rng(0))
        assert walks.shape == (n, 11)
        np.testing.assert_array_equal(walks[:, 0], starts)
        # Every step is a real neighbour (or a sink absorption).
        for i in range(n):
            for t in range(10):
                u, v = walks[i, t], walks[i, t + 1]
                assert adj[u, v] > 0 or u == v

    def test_walks_stay_in_communities(self):
        """Walks from clique A rarely reach clique B (one bridge)."""
        edges, n = _two_cliques()
        adj = build_adjacency(edges, n)
        starts = np.full(200, 1, dtype=np.int64)  # node in clique A
        walks = random_walks(adj, 5, starts, np.random.default_rng(1))
        frac_b = (walks >= n // 2).mean()
        assert frac_b < 0.2

    def test_dead_end_absorbs(self):
        edges = EdgeList.from_tuples([(0, 0, 1)])
        adj = build_adjacency(edges, 3, undirected=False)
        # Node 2 is isolated → walk stays put.
        walks = random_walks(
            adj, 4, np.asarray([2]), np.random.default_rng(0)
        )
        np.testing.assert_array_equal(walks[0], [2, 2, 2, 2, 2])


class TestDeepWalk:
    def test_loss_decreases(self):
        edges, n = _two_cliques()
        dw = DeepWalk(
            edges, n, dimension=16, walks_per_node=3, walk_length=10,
            window=3, seed=0,
        )
        losses = dw.train(4)
        assert losses[-1] < losses[0]

    def test_communities_separate_in_embedding(self):
        edges, n = _two_cliques(k=12)
        dw = DeepWalk(
            edges, n, dimension=8, walks_per_node=10, walk_length=20,
            window=4, lr=0.1, seed=0,
        )
        dw.train(10)
        emb = dw.embeddings / np.linalg.norm(
            dw.embeddings, axis=1, keepdims=True
        )
        k = n // 2
        within = (emb[:k] @ emb[:k].T).mean()
        across = (emb[:k] @ emb[k:].T).mean()
        assert within > across + 0.1

    def test_after_epoch_callback(self):
        edges, n = _two_cliques()
        dw = DeepWalk(edges, n, dimension=8, walks_per_node=1,
                      walk_length=5, window=2, seed=0)
        calls = []
        dw.train(2, after_epoch=lambda e, loss, t: calls.append((e, loss)))
        assert [e for e, _ in calls] == [0, 1]

    def test_memory_accounting(self):
        edges, n = _two_cliques()
        dw = DeepWalk(edges, n, dimension=8, seed=0)
        assert dw.memory_bytes() >= 2 * n * 8 * 4


class TestHeavyEdgeMatching:
    def test_matching_is_symmetric_involution(self):
        edges, n = _two_cliques()
        adj = build_adjacency(edges, n)
        match = heavy_edge_matching(adj, np.random.default_rng(0))
        for i in range(n):
            assert match[match[i]] == i

    def test_matched_pairs_are_neighbours(self):
        edges, n = _two_cliques()
        adj = build_adjacency(edges, n)
        match = heavy_edge_matching(adj, np.random.default_rng(1))
        for i in range(n):
            j = match[i]
            if j != i:
                assert adj[i, j] > 0

    def test_isolated_nodes_unmatched(self):
        adj = sp.csr_matrix((5, 5))
        match = heavy_edge_matching(adj, np.random.default_rng(0))
        np.testing.assert_array_equal(match, np.arange(5))


class TestCoarsenGraph:
    def test_size_shrinks(self):
        edges, n = _two_cliques()
        adj = build_adjacency(edges, n)
        level = coarsen_graph(adj, np.random.default_rng(0))
        assert level.adj.shape[0] < n
        assert level.adj.shape[0] >= n // 2
        assert len(level.assignment) == n

    def test_edge_weight_conserved_off_diagonal(self):
        """Contraction preserves total weight minus intra-pair edges."""
        edges, n = _two_cliques()
        adj = build_adjacency(edges, n)
        level = coarsen_graph(adj, np.random.default_rng(0))
        # Weight within merged pairs disappears from the diagonal.
        assert level.adj.sum() <= adj.sum()
        assert level.adj.diagonal().sum() == 0

    def test_assignment_covers_all_supernodes(self):
        edges, n = _two_cliques()
        adj = build_adjacency(edges, n)
        level = coarsen_graph(adj, np.random.default_rng(0))
        assert set(level.assignment) == set(range(level.adj.shape[0]))


class TestMILE:
    def test_pipeline_produces_full_embeddings(self):
        # n = 80 exceeds the coarsening floor, so refinement runs.
        edges, n = _two_cliques(k=40)
        mile = MILE(
            edges, n, num_levels=2, dimension=16, base_epochs=2, seed=0,
            deepwalk_kwargs=dict(walks_per_node=2, walk_length=8, window=2),
        )
        emb = mile.train()
        assert emb.shape == (n, 16)
        assert np.isfinite(emb).all()
        assert len(mile.levels) >= 1
        # Refinement normalises rows (float32 tolerance).
        np.testing.assert_allclose(
            np.linalg.norm(emb, axis=1), 1.0, atol=1e-3
        )

    def test_small_graph_skips_coarsening(self):
        """Graphs below the floor embed directly (no levels)."""
        edges, n = _two_cliques(k=10)
        mile = MILE(
            edges, n, num_levels=3, dimension=16, base_epochs=1, seed=0,
            deepwalk_kwargs=dict(walks_per_node=1, walk_length=4, window=2),
        )
        emb = mile.train()
        assert emb.shape == (n, 16)
        assert mile.levels == []

    def test_communities_separate(self):
        edges, n = _two_cliques()
        mile = MILE(
            edges, n, num_levels=1, dimension=16, base_epochs=4, seed=0,
            deepwalk_kwargs=dict(walks_per_node=4, walk_length=10, window=3),
        )
        emb = mile.train()
        k = n // 2
        within = (emb[:k] @ emb[:k].T).mean()
        across = (emb[:k] @ emb[k:].T).mean()
        assert within > across

    def test_invalid_levels(self):
        edges, n = _two_cliques()
        with pytest.raises(ValueError):
            MILE(edges, n, num_levels=0)

    def test_coarsening_stops_at_floor(self):
        """Requesting absurd depth must not destroy the graph."""
        edges, n = _two_cliques(k=10)
        mile = MILE(
            edges, n, num_levels=10, dimension=4, base_epochs=1, seed=0,
            deepwalk_kwargs=dict(walks_per_node=1, walk_length=4, window=2),
        )
        emb = mile.train()
        assert emb.shape == (n, 4)
        assert len(mile.levels) < 10


class TestAdapter:
    def test_wraps_embeddings(self):
        emb = np.eye(5, dtype=np.float32)
        model = embeddings_to_model(emb)
        np.testing.assert_array_equal(
            model.global_embeddings("node"), emb
        )

    def test_scores_are_dot_products(self):
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((6, 3)).astype(np.float32)
        model = embeddings_to_model(emb, "dot")
        s = model.score_pairs(0, emb[:2], emb[2:4])
        np.testing.assert_allclose(
            s, np.einsum("nd,nd->n", emb[:2], emb[2:4]), rtol=1e-6
        )

    def test_evaluable(self):
        rng = np.random.default_rng(1)
        emb = rng.standard_normal((20, 4)).astype(np.float32)
        model = embeddings_to_model(emb)
        edges = EdgeList.from_tuples([(0, 0, 1), (2, 0, 3)])
        m = LinkPredictionEvaluator(model).evaluate(edges, num_candidates=5)
        assert m.num_queries == 4

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            embeddings_to_model(np.zeros(5))
