"""Tests for the single-machine partitioned trainer."""

import numpy as np
import pytest

from repro.config import ConfigSchema, EntitySchema, RelationSchema
from repro.core.model import EmbeddingModel
from repro.core.trainer import Trainer
from repro.eval.ranking import LinkPredictionEvaluator
from repro.graph.edgelist import EdgeList
from repro.graph.entity_storage import EntityStorage
from repro.graph.partitioning import partition_entities
from repro.graph.storage import PartitionedEmbeddingStorage


def _ring_graph(n=200, extra=1500, seed=0):
    rng = np.random.default_rng(seed)
    src = np.arange(n)
    dst = (src + 1) % n
    es = rng.integers(0, n, extra)
    ed = (es + rng.integers(1, 4, extra)) % n
    src = np.concatenate([src, es])
    dst = np.concatenate([dst, ed])
    return EdgeList(src, np.zeros(len(src), dtype=np.int64), dst)


def _config(nparts=1, **kw):
    defaults = dict(
        dimension=16, num_epochs=4, batch_size=200, chunk_size=50,
        lr=0.1, num_batch_negs=10, num_uniform_negs=10,
    )
    defaults.update(kw)
    return ConfigSchema(
        entities={"node": EntitySchema(num_partitions=nparts)},
        relations=[
            RelationSchema(
                name="link", lhs="node", rhs="node", operator="translation"
            )
        ],
        **defaults,
    )


def _setup(nparts=1, n=200, tmp_path=None, seed=0, **kw):
    config = _config(nparts, **kw)
    entities = EntityStorage({"node": n})
    entities.set_partitioning(
        "node", partition_entities(n, nparts, np.random.default_rng(seed))
    )
    model = EmbeddingModel(config, entities, np.random.default_rng(seed))
    storage = (
        PartitionedEmbeddingStorage(tmp_path) if tmp_path is not None else None
    )
    trainer = Trainer(
        config, model, entities, storage, np.random.default_rng(seed)
    )
    return config, entities, model, trainer


class TestSingleMachine:
    def test_loss_decreases(self):
        _, _, _, trainer = _setup()
        stats = trainer.train(_ring_graph())
        assert stats.epochs[-1].mean_loss < stats.epochs[0].mean_loss

    def test_learns_ring_structure(self):
        """On a near-deterministic graph MRR must get high."""
        config, entities, model, trainer = _setup(num_epochs=10)
        edges = _ring_graph()
        trainer.train(edges)
        ev = LinkPredictionEvaluator(model)
        m = ev.evaluate(
            edges[:500], num_candidates=100,
            rng=np.random.default_rng(0),
        )
        assert m.mrr > 0.35
        assert m.hits_at[10] > 0.7

    def test_stats_accounting(self):
        _, _, _, trainer = _setup(num_epochs=3)
        edges = _ring_graph()
        stats = trainer.train(edges)
        assert len(stats.epochs) == 3
        assert stats.total_edges == 3 * len(edges)
        assert stats.edges_per_second > 0
        assert stats.peak_resident_bytes > 0
        assert stats.total_time > 0

    def test_zero_epochs(self):
        _, _, _, trainer = _setup(num_epochs=0)
        stats = trainer.train(_ring_graph())
        assert stats.epochs == []

    def test_after_epoch_callback(self):
        _, _, _, trainer = _setup(num_epochs=3)
        calls = []
        trainer.train(
            _ring_graph(), after_epoch=lambda e, s: calls.append(e)
        )
        assert calls == [0, 1, 2]

    def test_multiworker_trains(self):
        _, _, model, trainer = _setup(num_epochs=3, num_workers=4)
        stats = trainer.train(_ring_graph())
        assert stats.epochs[-1].mean_loss < stats.epochs[0].mean_loss


class TestPartitionedTraining:
    def test_requires_storage(self):
        config = _config(nparts=4)
        entities = EntityStorage({"node": 200})
        entities.set_partitioning(
            "node", partition_entities(200, 4, np.random.default_rng(0))
        )
        model = EmbeddingModel(config, entities)
        with pytest.raises(ValueError, match="Storage"):
            Trainer(config, model, entities)

    def test_partitioned_swaps_to_disk(self, tmp_path):
        config, entities, model, trainer = _setup(
            nparts=4, tmp_path=tmp_path, num_epochs=2
        )
        stats = trainer.train(_ring_graph())
        assert stats.epochs[0].swaps > 0
        # At most two node partitions resident at any time.
        assert len(model.resident_tables()) <= 2
        storage = trainer.storage
        assert storage.stored_partitions("node") == [0, 1, 2, 3]

    def test_partitioned_quality_close_to_unpartitioned(self, tmp_path):
        """The paper's headline: partitioning barely hurts quality."""
        edges = _ring_graph(n=300, extra=3000)
        results = {}
        for nparts in (1, 4):
            config, entities, model, trainer = _setup(
                nparts=nparts, n=300,
                tmp_path=tmp_path / str(nparts) if nparts > 1 else None,
                num_epochs=8, seed=1,
            )
            trainer.train(edges)
            model_full = _load_full_model(
                config, entities, model, trainer
            )
            ev = LinkPredictionEvaluator(model_full)
            results[nparts] = ev.evaluate(
                edges[:800], num_candidates=100,
                rng=np.random.default_rng(0),
            ).mrr
        assert results[4] > 0.6 * results[1]

    def test_partitioned_peak_memory_lower(self, tmp_path):
        edges = _ring_graph(n=400, extra=2000)
        peaks = {}
        for nparts in (1, 8):
            config, entities, model, trainer = _setup(
                nparts=nparts, n=400,
                tmp_path=tmp_path / str(nparts) if nparts > 1 else None,
                num_epochs=1,
            )
            stats = trainer.train(edges)
            peaks[nparts] = stats.peak_resident_bytes
        assert peaks[8] < 0.5 * peaks[1]

    def test_empty_bucket_is_skipped(self, tmp_path):
        """A sparse graph leaves some buckets empty; training proceeds."""
        config, entities, model, trainer = _setup(
            nparts=4, n=100, tmp_path=tmp_path, num_epochs=1
        )
        edges = EdgeList.from_tuples([(0, 0, 1), (1, 0, 2), (5, 0, 6)])
        stats = trainer.train(edges)
        assert stats.epochs[0].num_edges == 3

    def test_resume_from_storage(self, tmp_path):
        """A second trainer on the same storage picks up the state."""
        edges = _ring_graph()
        config, entities, model, trainer = _setup(
            nparts=2, tmp_path=tmp_path, num_epochs=2
        )
        trainer.train(edges)
        table_after = trainer.storage.load("node", 0)[0].copy()

        config2, entities2, model2, trainer2 = _setup(
            nparts=2, tmp_path=tmp_path, num_epochs=0
        )
        # Trigger a swap-in of partition 0 via a 1-epoch run.
        trainer2.config = config2.replace(num_epochs=1)
        trainer2.train(edges)
        # The resumed run must have started from the stored weights, so
        # partition 0 on disk should differ from a fresh init (it moved)
        # but be correlated with the first run's final state.
        resumed = trainer2.storage.load("node", 0)[0]
        corr = np.corrcoef(table_after.ravel(), resumed.ravel())[0, 1]
        assert corr > 0.5


def _load_full_model(config, entities, model, trainer):
    """Make sure all partitions are resident for evaluation."""
    from repro.core.tables import DenseEmbeddingTable

    if trainer.storage is None:
        return model
    for part in range(entities.num_partitions("node")):
        if not model.has_table("node", part):
            emb, state = trainer.storage.load("node", part)
            model.set_table("node", part, DenseEmbeddingTable(emb, state))
    return model


class TestBucketOrders:
    @pytest.mark.parametrize(
        "order", ["inside_out", "outside_in", "chained", "random"]
    )
    def test_all_orders_train(self, tmp_path, order):
        config, entities, model, trainer = _setup(
            nparts=4, tmp_path=tmp_path, num_epochs=2, bucket_order=order
        )
        stats = trainer.train(_ring_graph())
        assert stats.epochs[-1].num_edges > 0


class TestInTrainingEval:
    def test_eval_fraction_records_mrr(self):
        _, _, _, trainer = _setup(num_epochs=4, eval_fraction=0.1)
        stats = trainer.train(_ring_graph())
        last = stats.epochs[-1]
        assert last.num_eval_edges > 0
        assert 0 <= last.eval_mrr_before <= 1
        assert 0 <= last.eval_mrr_after <= 1
        # Later epochs: the bucket's embeddings are already informative
        # before training it, and the final epoch's post-training eval
        # beats the first epoch's pre-training eval.
        assert last.eval_mrr_after > stats.epochs[0].eval_mrr_before

    def test_eval_edges_excluded_from_training(self):
        _, _, _, trainer = _setup(num_epochs=1, eval_fraction=0.25)
        edges = _ring_graph()
        stats = trainer.train(edges)
        trained = stats.epochs[0].num_edges
        held = stats.epochs[0].num_eval_edges
        assert trained + held == len(edges)
        assert held >= int(0.2 * len(edges))

    def test_zero_fraction_no_eval(self):
        _, _, _, trainer = _setup(num_epochs=1)
        stats = trainer.train(_ring_graph())
        assert stats.epochs[0].num_eval_edges == 0

    def test_partitioned_eval(self, tmp_path):
        _, _, _, trainer = _setup(
            nparts=4, tmp_path=tmp_path, num_epochs=2, eval_fraction=0.1
        )
        stats = trainer.train(_ring_graph())
        assert stats.epochs[-1].num_eval_edges > 0


class TestStratumPasses:
    """Paper footnote 3: sub-epoch bucket interleaving."""

    def test_all_edges_trained_exactly_once_per_epoch(self, tmp_path):
        _, _, _, trainer = _setup(
            nparts=2, tmp_path=tmp_path, num_epochs=1, stratum_passes=4
        )
        edges = _ring_graph()
        stats = trainer.train(edges)
        assert stats.epochs[0].num_edges == len(edges)

    def test_more_swaps_with_more_passes(self, tmp_path):
        swaps = {}
        for passes in (1, 3):
            _, _, _, trainer = _setup(
                nparts=4, tmp_path=tmp_path / str(passes), num_epochs=1,
                stratum_passes=passes,
            )
            stats = trainer.train(_ring_graph())
            swaps[passes] = stats.epochs[0].swaps
        assert swaps[3] > swaps[1]

    def test_quality_not_degraded(self, tmp_path):
        edges = _ring_graph(n=300, extra=3000)
        mrrs = {}
        for passes in (1, 4):
            config, entities, model, trainer = _setup(
                nparts=4, n=300, tmp_path=tmp_path / f"p{passes}",
                num_epochs=6, stratum_passes=passes, seed=1,
            )
            trainer.train(edges)
            model_full = _load_full_model(config, entities, model, trainer)
            ev = LinkPredictionEvaluator(model_full)
            mrrs[passes] = ev.evaluate(
                edges[:600], num_candidates=100,
                rng=np.random.default_rng(0),
            ).mrr
        assert mrrs[4] > 0.7 * mrrs[1]

    def test_invalid_passes_rejected(self):
        with pytest.raises(ValueError, match="stratum_passes"):
            _config(stratum_passes=0)
