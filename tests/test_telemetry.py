"""Tests for the unified telemetry layer: span tracer, metrics
registry, Chrome export, and the trace-driven overlap analyzer.

The load-bearing properties:

- **inertness** — with no tracer armed, ``telemetry.span`` returns a
  shared no-op object and instrumented code paths stay bit-identical
  to the seed behaviour (the serial-vs-pipelined oracle re-checked
  here with tracing armed);
- **thread-safety** — spans recorded from many threads land in the
  ring with per-thread lanes and no lost events until capacity;
- **schema** — exported traces are valid Chrome ``trace_event`` JSON
  that the analyzer (and chrome://tracing) can load.
"""

import json
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import NULL_SPAN, Tracer
from repro.telemetry.analyze import (
    analyze_chrome,
    analyze_tracer,
    load_trace,
    render_digest,
    render_gantt,
    render_report,
    union_intervals,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)


@pytest.fixture(autouse=True)
def _disarm_tracer():
    """No test may leak an armed tracer into the next."""
    telemetry.disable()
    yield
    telemetry.disable()


def span_event(tracer, name):
    return next(e for e in tracer.events() if e.name == name)


class TestNullSpan:
    def test_disabled_span_is_shared_noop(self):
        assert telemetry.active() is None
        assert not telemetry.enabled()
        sp = telemetry.span("train.bucket", cat="compute", bucket="0,0")
        assert sp is NULL_SPAN
        assert telemetry.span("other") is sp  # no per-call allocation
        with sp as inner:
            inner.note(bytes=123)  # all no-ops

    def test_set_lane_noop_when_disabled(self):
        telemetry.set_lane("anything")  # must not raise

    def test_export_requires_armed_tracer(self):
        with pytest.raises(RuntimeError):
            telemetry.export("nowhere.json")


class TestTracer:
    def test_enable_disable_roundtrip(self):
        tracer = telemetry.enable()
        assert telemetry.active() is tracer
        assert telemetry.enabled()
        assert telemetry.disable() is tracer
        assert telemetry.active() is None

    def test_span_records_name_cat_args(self):
        tracer = telemetry.enable()
        with telemetry.span("prefetch.fetch", cat="transfer", part=3) as sp:
            sp.note(bytes=4096)
        ev = span_event(tracer, "prefetch.fetch")
        assert ev.cat == "transfer"
        assert ev.args == {"part": 3, "bytes": 4096}
        assert ev.dur_us >= 0

    def test_nested_spans_both_recorded(self):
        tracer = telemetry.enable()
        with telemetry.span("outer", cat="stall"):
            with telemetry.span("inner", cat="transfer"):
                pass
        names = [e.name for e in tracer.events()]
        # Inner exits (and records) first; both survive.
        assert names == ["inner", "outer"]

    def test_threads_get_distinct_lanes(self):
        tracer = telemetry.enable()
        telemetry.set_lane("main-lane")

        def worker():
            telemetry.set_lane("worker-lane")
            with telemetry.span("w.work"):
                pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        with telemetry.span("m.work"):
            pass
        lanes = set(tracer.lanes().values())
        assert {"main-lane", "worker-lane"} <= lanes
        tids = {e.tid for e in tracer.events()}
        assert len(tids) == 2  # one lane per thread

    def test_unnamed_lane_defaults_to_thread_name(self):
        tracer = telemetry.enable()
        with telemetry.span("x"):
            pass
        (lane,) = tracer.lanes().values()
        assert lane == threading.current_thread().name

    def test_ring_overflow_drops_oldest_and_counts(self):
        tracer = telemetry.enable(capacity=4)
        for i in range(7):
            with telemetry.span(f"s{i}"):
                pass
        assert len(tracer.events()) == 4
        assert [e.name for e in tracer.events()] == ["s3", "s4", "s5", "s6"]
        assert tracer.dropped == 3

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_concurrent_recording_loses_nothing(self):
        tracer = telemetry.enable()
        n, threads = 200, 8
        # All threads alive at once, or the OS reuses thread idents and
        # lanes legitimately collapse.
        gate = threading.Barrier(threads)

        def hammer(k):
            gate.wait()
            for i in range(n):
                with telemetry.span(f"t{k}.{i}"):
                    pass

        ts = [threading.Thread(target=hammer, args=(k,)) for k in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert len(tracer.events()) == n * threads
        assert tracer.dropped == 0
        assert len(set(e.tid for e in tracer.events())) == threads


class TestChromeExport:
    def test_exported_file_is_valid_chrome_json(self, tmp_path):
        tracer = telemetry.enable()
        telemetry.set_lane("lane-a")
        tracer.add_metadata(benchmark="unit")
        with telemetry.span("train.bucket", cat="compute", bucket="0,1"):
            pass
        path = tmp_path / "trace.json"
        telemetry.export(path)
        telemetry.disable()

        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["benchmark"] == "unit"
        assert doc["otherData"]["dropped_events"] == 0
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert metas and xs
        assert metas[0]["name"] == "thread_name"
        assert metas[0]["args"]["name"] == "lane-a"
        ev = xs[0]
        assert ev["name"] == "train.bucket"
        assert ev["cat"] == "compute"
        assert isinstance(ev["ts"], int) and isinstance(ev["dur"], int)
        assert ev["pid"] == 0
        assert ev["args"]["bucket"] == "0,1"
        # And it round-trips through the analyzer's loader.
        assert load_trace(path)["traceEvents"]

    def test_numpy_args_serialize(self, tmp_path):
        tracer = telemetry.enable()
        with telemetry.span("x", cat="transfer", nbytes=np.int64(42)):
            pass
        path = tmp_path / "np.json"
        tracer.export(path)
        assert json.loads(path.read_text())["traceEvents"]

    def test_loader_rejects_non_trace(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(ValueError):
            load_trace(path)


class TestMetrics:
    def test_metric_key_sorts_labels(self):
        assert metric_key("a.b", {}) == "a.b"
        assert metric_key("a.b", {"z": 1, "a": "x"}) == "a.b{a=x,z=1}"

    def test_counter_exact_under_contention(self):
        c = Counter("c")
        n, threads = 1000, 8

        def hammer():
            for _ in range(n):
                c.inc()

        ts = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert int(c.value) == n * threads

    def test_gauge_tracks_high_water_mark(self):
        g = Gauge("g")
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.max == 5.0

    def test_histogram_summary(self):
        h = Histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["total"] == 6.0
        assert s["mean"] == 2.0
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_registry_get_or_create_and_snapshot(self):
        r = MetricsRegistry()
        c1 = r.counter("pipeline.hits", machine=1)
        c1.inc(3)
        assert r.counter("pipeline.hits", machine=1) is c1
        assert r.counter("pipeline.hits", machine=2) is not c1
        r.gauge("resident").set(7.0)
        snap = r.snapshot()
        assert snap["pipeline.hits{machine=1}"] == 3.0
        assert snap["resident"] == 7.0

    def test_registry_rejects_kind_mismatch(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")


def synthetic_trace():
    """Hand-built trace: 1s compute, 0.6s transfer of which 0.5s
    overlaps, plus a lock acquire/hold and a stall."""
    us = 1_000_000

    def ev(name, cat, ts, dur, tid=0, **args):
        return {
            "name": name, "cat": cat, "ph": "X",
            "ts": int(ts * us), "dur": int(dur * us),
            "pid": 0, "tid": tid, "args": args,
        }

    return {
        "traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": "trainer.main"}},
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
             "args": {"name": "prefetch"}},
            ev("train.bucket", "compute", 0.0, 1.0, bucket="0,1"),
            ev("prefetch.fetch", "transfer", 0.5, 0.5, tid=1),
            ev("prefetch.fetch", "transfer", 1.4, 0.1, tid=1),
            ev("swap.bucket", "stall", 1.0, 0.3, bucket="0,1"),
            ev("lock.acquire", "lock", 0.0, 0.01, machine=0,
               granted=True, bucket="0,1"),
            ev("lock.release", "lock", 1.3, 0.01, machine=0,
               bucket="0,1"),
            ev("lock.starved", "stall", 1.31, 0.2, machine=1),
        ],
        "otherData": {"dropped_events": 2},
    }


class TestAnalyzer:
    def test_union_intervals(self):
        assert union_intervals([(1, 2), (0, 1.5), (3, 4), (4, 4)]) == [
            (0, 2), (3, 4),
        ]

    def test_overlap_and_categories(self):
        a = analyze_chrome(synthetic_trace())
        assert a.num_events == 7
        assert a.dropped == 2
        assert a.lanes == {0: "trainer.main", 1: "prefetch"}
        assert a.compute_busy_s == pytest.approx(1.0)
        assert a.transfer_busy_s == pytest.approx(0.6)
        assert a.overlapped_s == pytest.approx(0.5)
        assert a.overlap_efficiency == pytest.approx(0.5 / 0.6)
        assert a.stall_s == pytest.approx(0.5)

    def test_bucket_costs(self):
        a = analyze_chrome(synthetic_trace())
        (cost,) = a.buckets
        assert cost.bucket == "0,1"
        assert cost.train_s == pytest.approx(1.0)
        assert cost.swap_s == pytest.approx(0.3)
        assert cost.visits == 1

    def test_lock_pairing(self):
        a = analyze_chrome(synthetic_trace())
        assert a.lock.acquires == 1
        # Hold = release end (1.31) - acquire end (0.01).
        assert a.lock.hold_s == pytest.approx(1.30)
        assert a.lock.starved_s == pytest.approx(0.2)

    def test_to_dict_keys(self):
        d = analyze_chrome(synthetic_trace()).to_dict()
        assert set(d) == {
            "duration_seconds", "num_events", "dropped_events",
            "compute_busy_seconds", "transfer_busy_seconds",
            "overlapped_seconds", "overlap_efficiency", "stall_seconds",
        }

    def test_render_report_and_digest(self):
        trace = synthetic_trace()
        a = analyze_chrome(trace)
        report = render_report(a, trace=trace)
        assert "overlap" in report
        assert "bucket 0,1" in report
        assert "trainer.main" in report  # Gantt lane
        assert "# compute" in report  # legend
        digest = render_digest(a)
        assert digest.startswith("telemetry: overlap 83.3%")
        assert "slowest buckets: 0,1" in digest
        assert digest.count("\n") <= 2  # one-screen

    def test_analyze_tracer_live(self):
        tracer = telemetry.enable()
        with telemetry.span("train.bucket", cat="compute", bucket="1,1"):
            pass
        a = analyze_tracer(tracer)
        assert a.num_events == 1
        assert a.buckets[0].bucket == "1,1"

    def test_gantt_empty_trace(self):
        assert "no categorized spans" in render_gantt({"traceEvents": []})


class TestCliAnalyzer:
    def test_main_reports_and_asserts(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        path = tmp_path / "t.json"
        path.write_text(json.dumps(synthetic_trace()))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "overlap" in out
        assert main([str(path), "--assert-overlap"]) == 0

    def test_assert_overlap_fails_without_overlap(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        path = tmp_path / "flat.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main([str(path), "--assert-overlap"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_missing_file_is_error(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        assert main([str(tmp_path / "absent.json")]) == 2
        assert "error" in capsys.readouterr().err


class TestInstrumentedTraining:
    """Tracing armed end to end: results stay bit-identical and the
    trace captures the pipeline's compute/transfer interleaving."""

    def test_traced_pipelined_run_bit_identical(self, tmp_path):
        from tests.test_pipeline import train_run

        serial, _, _ = train_run(
            tmp_path, pipeline=False, num_partitions=4
        )
        trace_path = tmp_path / "trace.json"
        piped, _, _ = train_run(
            tmp_path, pipeline=True, num_partitions=4,
            trace_path=str(trace_path),
        )
        np.testing.assert_array_equal(
            serial.global_embeddings("node"), piped.global_embeddings("node")
        )
        # The trainer owned the tracer: armed on entry, exported on exit.
        assert telemetry.active() is None
        a = analyze_chrome(load_trace(trace_path))
        assert a.num_events > 0
        assert a.compute_busy_s > 0
        assert a.transfer_busy_s > 0
        names = {e["name"] for e in load_trace(trace_path)["traceEvents"]}
        assert {"train.bucket", "swap.bucket", "prefetch.fetch"} <= names

    def test_traced_distributed_run(self):
        from tests.test_cluster import _graph, _setup

        from repro.distributed.cluster import DistributedTrainer

        config, entities = _setup(2, 4, num_epochs=2, pipeline=True)
        tracer = telemetry.enable()
        trainer = DistributedTrainer(config, entities)
        _, stats = trainer.train(_graph())
        telemetry.disable()
        assert stats.total_edges > 0
        lanes = set(tracer.lanes().values())
        assert {"machine-0.main", "machine-1.main"} <= lanes
        a = analyze_tracer(tracer)
        assert a.compute_busy_s > 0
        assert a.lock.acquires > 0
        assert a.lock.hold_s > 0

    def test_stats_derived_from_registry_match_run(self, tmp_path):
        """PipelineStats is a snapshot of the pipeline registry."""
        from tests.test_pipeline import train_run

        _, stats, _ = train_run(tmp_path, pipeline=True, num_partitions=4)
        p = stats.pipeline
        assert p.prefetch_hits + p.prefetch_misses > 0
        # Epoch deltas sum to the run total (merge over epochs).
        assert p.prefetch_hits == sum(
            e.pipeline.prefetch_hits for e in stats.epochs
        )
        assert p.cache_evictions == sum(
            e.pipeline.cache_evictions for e in stats.epochs
        )


class TestCliTrace:
    def test_train_cli_writes_trace_and_digest(self, tmp_path, capsys):
        from repro.cli import main, save_edges
        from repro.config import single_entity_config

        rng = np.random.default_rng(0)
        from repro.graph.edgelist import EdgeList

        edges = EdgeList(
            rng.integers(0, 100, 800, dtype=np.int64),
            np.zeros(800, dtype=np.int64),
            rng.integers(0, 100, 800, dtype=np.int64),
        )
        config = single_entity_config(
            num_partitions=2, dimension=8, num_epochs=1,
            batch_size=200, chunk_size=50,
        )
        config_path = tmp_path / "config.json"
        config_path.write_text(config.to_json())
        edges_path = tmp_path / "edges.npz"
        save_edges(edges_path, edges)
        trace_path = tmp_path / "trace.json"
        rc = main([
            "train", "--config", str(config_path),
            "--edges", str(edges_path),
            "--checkpoint", str(tmp_path / "model"),
            "--pipeline", "--trace", str(trace_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "telemetry: overlap" in out
        assert f"trace written to {trace_path}" in out
        assert telemetry.active() is None
        assert load_trace(trace_path)["traceEvents"]
