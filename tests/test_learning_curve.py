"""Tests for the learning-curve recorder."""

import numpy as np

from repro.config import ConfigSchema, EntitySchema, RelationSchema
from repro.core.model import EmbeddingModel
from repro.core.trainer import Trainer
from repro.eval.learning_curve import CurvePoint, LearningCurve
from repro.graph.edgelist import EdgeList
from repro.graph.entity_storage import EntityStorage


def _graph(n=150, extra=1000, seed=0):
    rng = np.random.default_rng(seed)
    src = np.arange(n)
    dst = (src + 1) % n
    es = rng.integers(0, n, extra)
    ed = (es + rng.integers(1, 4, extra)) % n
    return EdgeList(
        np.concatenate([src, es]),
        np.zeros(n + extra, dtype=np.int64),
        np.concatenate([dst, ed]),
    )


class TestLearningCurve:
    def test_record_points(self):
        curve = LearningCurve(label="test")
        curve.record(0, 0.5, 0.8)
        curve.record(1, 0.6, 0.9)
        assert len(curve.points) == 2
        assert curve.best_mrr() == 0.6
        assert curve.points[1].wallclock >= curve.points[0].wallclock

    def test_time_to_mrr(self):
        curve = LearningCurve()
        curve.record(0, 0.3, 0.0)
        curve.record(1, 0.7, 0.0)
        assert curve.time_to_mrr(0.5) == curve.points[1].wallclock
        assert curve.time_to_mrr(0.99) is None

    def test_restart_clock(self):
        curve = LearningCurve()
        curve.record(0, 0.5, 0.5)
        curve.restart_clock()
        assert curve.points == []

    def test_as_rows(self):
        curve = LearningCurve()
        curve.record(3, 0.25, 0.5)
        rows = curve.as_rows()
        assert rows[0][0] == 3 and rows[0][2] == 0.25

    def test_point_str(self):
        p = CurvePoint(epoch=1, wallclock=2.0, mrr=0.5, hits_at_10=0.7)
        assert "MRR=0.500" in str(p)

    def test_callback_with_trainer(self):
        """The callback plugs into Trainer.after_epoch and records
        monotone-ish improving MRR on a learnable graph."""
        edges = _graph()
        config = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[
                RelationSchema(
                    name="r", lhs="node", rhs="node", operator="translation"
                )
            ],
            dimension=16, num_epochs=4, batch_size=200, chunk_size=50,
            lr=0.1, num_batch_negs=10, num_uniform_negs=10,
        )
        entities = EntityStorage({"node": 150})
        model = EmbeddingModel(config, entities)
        trainer = Trainer(config, model, entities)
        curve = LearningCurve(label="pbg")
        cb = curve.make_callback(
            model, edges[:300], num_candidates=50, max_eval_edges=200,
        )
        trainer.train(edges, after_epoch=cb)
        assert len(curve.points) == 4
        assert [p.epoch for p in curve.points] == [0, 1, 2, 3]
        # Quality after training beats the first epoch's quality.
        assert curve.points[-1].mrr >= curve.points[0].mrr * 0.8
        assert curve.best_mrr() > 0.1

    def test_eval_subsampling(self):
        edges = _graph()
        config = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[RelationSchema(name="r", lhs="node", rhs="node")],
            dimension=8, num_epochs=1, batch_size=100, chunk_size=20,
            num_batch_negs=5, num_uniform_negs=5,
        )
        entities = EntityStorage({"node": 150})
        model = EmbeddingModel(config, entities)
        trainer = Trainer(config, model, entities)
        curve = LearningCurve()
        cb = curve.make_callback(
            model, edges, num_candidates=20, max_eval_edges=50
        )
        trainer.train(edges, after_epoch=cb)
        assert len(curve.points) == 1
