"""Tests for the parameter server and its sync client."""

import threading

import numpy as np
import pytest

from repro.distributed.parameter_server import (
    ParameterServer,
    SharedParameterClient,
)


class TestParameterServer:
    def test_register_pull(self):
        ps = ParameterServer()
        ps.register("w", np.asarray([1.0, 2.0]))
        np.testing.assert_allclose(ps.pull("w"), [1.0, 2.0])

    def test_register_idempotent_first_writer_wins(self):
        ps = ParameterServer()
        ps.register("w", np.asarray([1.0]))
        ps.register("w", np.asarray([9.0]))
        assert ps.pull("w")[0] == 1.0

    def test_push_delta_accumulates(self):
        ps = ParameterServer()
        ps.register("w", np.zeros(3))
        ps.push_delta("w", np.asarray([1.0, 0.0, -1.0]))
        ps.push_delta("w", np.asarray([1.0, 1.0, 0.0]))
        np.testing.assert_allclose(ps.pull("w"), [2.0, 1.0, -1.0])

    def test_pull_returns_copy(self):
        ps = ParameterServer()
        ps.register("w", np.zeros(2))
        v = ps.pull("w")
        v += 100
        np.testing.assert_allclose(ps.pull("w"), [0.0, 0.0])

    def test_sharding_covers_all_names(self):
        ps = ParameterServer(num_shards=4)
        for i in range(20):
            ps.register(f"p{i}", np.zeros(1))
        assert len(ps.names()) == 20

    def test_stats(self):
        ps = ParameterServer()
        ps.register("w", np.zeros(4))
        ps.pull("w")
        ps.push_delta("w", np.ones(4))
        assert ps.stats.pulls == 1
        assert ps.stats.pushes == 1
        assert ps.stats.bytes_transferred == 2 * 4 * 8

    def test_concurrent_pushes_all_counted(self):
        """Additive deltas from many threads must all land."""
        ps = ParameterServer(num_shards=2)
        ps.register("w", np.zeros(1))

        def pusher():
            for _ in range(100):
                ps.push_delta("w", np.asarray([1.0]))

        threads = [threading.Thread(target=pusher) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ps.pull("w")[0] == 800.0


class _FakeModel:
    """Local parameter holder for client tests."""

    def __init__(self, value):
        self.params = {"w": np.asarray(value, dtype=np.float64)}

    def get(self):
        return {k: v.copy() for k, v in self.params.items()}

    def set(self, params):
        for k, v in params.items():
            self.params[k] = v.copy()


class TestSharedParameterClient:
    def _client(self, server, model, interval=2):
        return SharedParameterClient(
            server, model.get, model.set, sync_interval=interval
        )

    def test_initial_sync_adopts_server_state(self):
        ps = ParameterServer()
        ps.register("w", np.asarray([5.0]))
        model = _FakeModel([1.0])
        client = self._client(ps, model)
        client.initial_sync()
        assert model.params["w"][0] == 5.0

    def test_sync_interval_throttles(self):
        ps = ParameterServer()
        model = _FakeModel([0.0])
        client = self._client(ps, model, interval=3)
        client.initial_sync()
        assert not client.maybe_sync()
        assert not client.maybe_sync()
        assert client.maybe_sync()
        assert client.syncs == 1

    def test_force_sync(self):
        ps = ParameterServer()
        model = _FakeModel([0.0])
        client = self._client(ps, model, interval=100)
        client.initial_sync()
        assert client.maybe_sync(force=True)

    def test_local_deltas_propagate(self):
        ps = ParameterServer()
        m1, m2 = _FakeModel([0.0]), _FakeModel([0.0])
        c1 = self._client(ps, m1, interval=1)
        c2 = self._client(ps, m2, interval=1)
        c1.initial_sync()
        c2.initial_sync()
        m1.params["w"][0] += 2.0
        c1.maybe_sync()
        c2.maybe_sync()
        assert m2.params["w"][0] == 2.0

    def test_concurrent_deltas_sum(self):
        """Two clients pushing disjoint progress both contribute."""
        ps = ParameterServer()
        m1, m2 = _FakeModel([0.0]), _FakeModel([0.0])
        c1 = self._client(ps, m1, interval=1)
        c2 = self._client(ps, m2, interval=1)
        c1.initial_sync()
        c2.initial_sync()
        m1.params["w"][0] += 1.0
        m2.params["w"][0] += 10.0
        c1.maybe_sync()
        c2.maybe_sync()
        # c2's sync saw c1's push plus its own delta.
        assert m2.params["w"][0] == 11.0
        c1.maybe_sync()
        assert m1.params["w"][0] == 11.0

    def test_no_push_when_unchanged(self):
        ps = ParameterServer()
        model = _FakeModel([1.0])
        client = self._client(ps, model, interval=1)
        client.initial_sync()
        before = ps.stats.pushes
        client.maybe_sync()
        assert ps.stats.pushes == before

    def test_invalid_interval(self):
        ps = ParameterServer()
        model = _FakeModel([0.0])
        with pytest.raises(ValueError):
            SharedParameterClient(ps, model.get, model.set, sync_interval=0)
