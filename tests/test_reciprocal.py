"""Tests for reciprocal relations (paper §5.4.1)."""

import numpy as np
import pytest

from repro.config import ConfigSchema, EntitySchema, RelationSchema
from repro.core.model import EmbeddingModel
from repro.core.reciprocal import (
    ReciprocalEvaluator,
    add_reciprocal_edges,
    add_reciprocal_relations,
)
from repro.core.trainer import Trainer
from repro.graph.edgelist import EdgeList
from repro.graph.entity_storage import EntityStorage


def _config(**kw):
    return ConfigSchema(
        entities={"ent": EntitySchema()},
        relations=[
            RelationSchema(name="a", lhs="ent", rhs="ent",
                           operator="translation"),
            RelationSchema(name="b", lhs="ent", rhs="ent",
                           operator="diagonal", weight=2.0),
        ],
        dimension=8,
        **kw,
    )


class TestAddReciprocalRelations:
    def test_doubles_relations(self):
        cfg = add_reciprocal_relations(_config())
        assert len(cfg.relations) == 4
        assert cfg.relations[2].name == "a_reciprocal"
        assert cfg.relations[3].name == "b_reciprocal"

    def test_twin_preserves_operator_and_weight(self):
        cfg = add_reciprocal_relations(_config())
        assert cfg.relations[3].operator == "diagonal"
        assert cfg.relations[3].weight == 2.0

    def test_twin_swaps_entity_types(self):
        base = ConfigSchema(
            entities={"user": EntitySchema(), "item": EntitySchema()},
            relations=[RelationSchema(name="buys", lhs="user", rhs="item")],
            dimension=4,
        )
        cfg = add_reciprocal_relations(base)
        twin = cfg.relations[1]
        assert twin.lhs == "item" and twin.rhs == "user"

    def test_double_application_rejected(self):
        cfg = add_reciprocal_relations(_config())
        with pytest.raises(ValueError, match="already contains"):
            add_reciprocal_relations(cfg)


class TestAddReciprocalEdges:
    def test_duplicates_reversed(self):
        edges = EdgeList.from_tuples([(0, 0, 1), (2, 1, 3)])
        out = add_reciprocal_edges(edges, num_relations=2)
        assert len(out) == 4
        assert list(out)[2] == (1, 2, 0)
        assert list(out)[3] == (3, 3, 2)

    def test_weights_carried(self):
        src = np.asarray([0])
        edges = EdgeList(src, src.copy(), src + 1, np.asarray([2.5]))
        out = add_reciprocal_edges(edges, 1)
        np.testing.assert_allclose(out.weights, [2.5, 2.5])

    def test_out_of_range_relation_rejected(self):
        edges = EdgeList.from_tuples([(0, 5, 1)])
        with pytest.raises(ValueError, match="relation 5"):
            add_reciprocal_edges(edges, num_relations=2)


class TestReciprocalEvaluator:
    def _trained(self, n=120, seed=0):
        rng = np.random.default_rng(seed)
        src = np.arange(n)
        dst = (src + 1) % n
        extra_s = rng.integers(0, n, 800)
        extra_d = (extra_s + rng.integers(1, 3, 800)) % n
        edges = EdgeList(
            np.concatenate([src, extra_s]),
            np.zeros(n + 800, dtype=np.int64),
            np.concatenate([dst, extra_d]),
        )
        base = ConfigSchema(
            entities={"ent": EntitySchema()},
            relations=[
                RelationSchema(name="next", lhs="ent", rhs="ent",
                               operator="translation")
            ],
            dimension=16, num_epochs=6, batch_size=200, chunk_size=50,
            num_batch_negs=10, num_uniform_negs=10, lr=0.1,
        )
        config = add_reciprocal_relations(base)
        train = add_reciprocal_edges(edges, 1)
        entities = EntityStorage({"ent": n})
        model = EmbeddingModel(config, entities)
        Trainer(config, model, entities).train(train)
        return model, edges

    def test_evaluates_both_directions(self):
        model, edges = self._trained()
        ev = ReciprocalEvaluator(model, num_base_relations=1)
        m = ev.evaluate(edges[:100], num_candidates=50,
                        rng=np.random.default_rng(0))
        assert m.num_queries == 200
        assert 0 < m.mrr <= 1

    def test_learns_better_than_random(self):
        model, edges = self._trained()
        ev = ReciprocalEvaluator(model, num_base_relations=1)
        m = ev.evaluate(edges[:200], num_candidates=100,
                        rng=np.random.default_rng(0))
        assert m.mrr > 0.15

    def test_rejects_reciprocal_ids_in_eval_edges(self):
        model, edges = self._trained()
        ev = ReciprocalEvaluator(model, num_base_relations=1)
        bad = EdgeList(edges.src[:1], edges.rel[:1] + 1, edges.dst[:1])
        with pytest.raises(ValueError, match="base relation"):
            ev.evaluate(bad, num_candidates=5)
