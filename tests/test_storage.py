"""Tests for on-disk partition and checkpoint storage."""

import numpy as np
import pytest

from repro.graph.storage import (
    CheckpointStorage,
    PartitionCache,
    PartitionedEmbeddingStorage,
    StorageError,
    WritebackQueue,
)


class TestPartitionedEmbeddingStorage:
    def test_roundtrip_bit_exact(self, tmp_path):
        store = PartitionedEmbeddingStorage(tmp_path)
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((10, 4)).astype(np.float32)
        state = rng.random(10).astype(np.float32)
        store.save("node", 3, emb, state)
        emb2, state2 = store.load("node", 3)
        np.testing.assert_array_equal(emb, emb2)
        np.testing.assert_array_equal(state, state2)

    def test_missing_partition(self, tmp_path):
        store = PartitionedEmbeddingStorage(tmp_path)
        with pytest.raises(StorageError, match="no stored partition"):
            store.load("node", 0)

    def test_overwrite(self, tmp_path):
        store = PartitionedEmbeddingStorage(tmp_path)
        a = np.zeros((2, 2), dtype=np.float32)
        b = np.ones((2, 2), dtype=np.float32)
        s = np.zeros(2, dtype=np.float32)
        store.save("node", 0, a, s)
        store.save("node", 0, b, s)
        emb, _ = store.load("node", 0)
        np.testing.assert_array_equal(emb, b)

    def test_row_mismatch_rejected(self, tmp_path):
        store = PartitionedEmbeddingStorage(tmp_path)
        with pytest.raises(ValueError, match="matching rows"):
            store.save(
                "node", 0,
                np.zeros((3, 2), dtype=np.float32),
                np.zeros(2, dtype=np.float32),
            )

    def test_exists_and_drop(self, tmp_path):
        store = PartitionedEmbeddingStorage(tmp_path)
        emb = np.zeros((1, 1), dtype=np.float32)
        state = np.zeros(1, dtype=np.float32)
        assert not store.exists("node", 0)
        store.save("node", 0, emb, state)
        assert store.exists("node", 0)
        store.drop("node", 0)
        assert not store.exists("node", 0)
        store.drop("node", 0)  # idempotent

    def test_stored_partitions_sorted(self, tmp_path):
        store = PartitionedEmbeddingStorage(tmp_path)
        emb = np.zeros((1, 1), dtype=np.float32)
        state = np.zeros(1, dtype=np.float32)
        for p in (5, 1, 3):
            store.save("node", p, emb, state)
        assert store.stored_partitions("node") == [1, 3, 5]
        assert store.stored_partitions("ghost") == []

    def test_multiple_entity_types_isolated(self, tmp_path):
        store = PartitionedEmbeddingStorage(tmp_path)
        emb = np.zeros((1, 1), dtype=np.float32)
        state = np.zeros(1, dtype=np.float32)
        store.save("user", 0, emb, state)
        store.save("item", 0, emb + 1, state)
        u, _ = store.load("user", 0)
        i, _ = store.load("item", 0)
        assert u[0, 0] == 0 and i[0, 0] == 1

    def test_corrupt_file_raises_storage_error(self, tmp_path):
        store = PartitionedEmbeddingStorage(tmp_path)
        emb = np.zeros((1, 1), dtype=np.float32)
        state = np.zeros(1, dtype=np.float32)
        store.save("node", 0, emb, state)
        path = tmp_path / "node" / "part-00000.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(StorageError, match="corrupt"):
            store.load("node", 0)

    def test_float64_downcast_on_save(self, tmp_path):
        """Storage normalises to float32 (the training dtype)."""
        store = PartitionedEmbeddingStorage(tmp_path)
        emb = np.ones((2, 2), dtype=np.float64)
        state = np.ones(2, dtype=np.float64)
        store.save("node", 0, emb, state)
        emb2, state2 = store.load("node", 0)
        assert emb2.dtype == np.float32 and state2.dtype == np.float32

    def test_nbytes(self, tmp_path):
        store = PartitionedEmbeddingStorage(tmp_path)
        assert store.nbytes() == 0
        store.save(
            "node", 0,
            np.zeros((100, 10), dtype=np.float32),
            np.zeros(100, dtype=np.float32),
        )
        assert store.nbytes() > 100 * 10 * 4


class TestCheckpointStorage:
    def test_config_roundtrip(self, tmp_path):
        ckpt = CheckpointStorage(tmp_path)
        assert not ckpt.exists()
        ckpt.save_config('{"a": 1}')
        assert ckpt.exists()
        assert ckpt.load_config() == '{"a": 1}'

    def test_missing_config(self, tmp_path):
        with pytest.raises(StorageError):
            CheckpointStorage(tmp_path).load_config()

    def test_metadata_roundtrip(self, tmp_path):
        ckpt = CheckpointStorage(tmp_path)
        ckpt.save_metadata({"epoch": 7, "note": "hello"})
        assert ckpt.load_metadata() == {"epoch": 7, "note": "hello"}

    def test_corrupt_metadata(self, tmp_path):
        ckpt = CheckpointStorage(tmp_path)
        (tmp_path / "metadata.json").write_text("{not json")
        with pytest.raises(StorageError, match="corrupt"):
            ckpt.load_metadata()

    def test_shared_roundtrip(self, tmp_path):
        ckpt = CheckpointStorage(tmp_path)
        arrays = {
            "rel_0": np.arange(4, dtype=np.float32),
            "rel_1": np.eye(2, dtype=np.float32),
        }
        ckpt.save_shared(arrays)
        loaded = ckpt.load_shared()
        assert set(loaded) == {"rel_0", "rel_1"}
        np.testing.assert_array_equal(loaded["rel_1"], np.eye(2))

    def test_missing_shared(self, tmp_path):
        with pytest.raises(StorageError):
            CheckpointStorage(tmp_path).load_shared()

    def test_embedded_partition_store(self, tmp_path):
        ckpt = CheckpointStorage(tmp_path)
        emb = np.ones((2, 3), dtype=np.float32)
        state = np.zeros(2, dtype=np.float32)
        ckpt.partitions.save("node", 0, emb, state)
        emb2, _ = ckpt.partitions.load("node", 0)
        np.testing.assert_array_equal(emb, emb2)


class TestCheckpointModelRoundtrip:
    def test_full_model_checkpoint(self, tmp_path):
        """Save a trained model, restore it, identical scores."""
        from repro.config import ConfigSchema, EntitySchema, RelationSchema
        from repro.core.model import EmbeddingModel
        from repro.core.tables import DenseEmbeddingTable
        from repro.graph.entity_storage import EntityStorage

        config = ConfigSchema(
            entities={"node": EntitySchema()},
            relations=[
                RelationSchema(
                    name="r", lhs="node", rhs="node", operator="translation"
                )
            ],
            dimension=8,
        )
        entities = EntityStorage({"node": 20})
        model = EmbeddingModel(config, entities)
        model.init_all_partitions(np.random.default_rng(0))
        model.rel_params[0][:] = 0.5

        ckpt = CheckpointStorage(tmp_path)
        ckpt.save_config(config.to_json())
        table = model.get_table("node", 0)
        ckpt.partitions.save("node", 0, table.weights, table.optimizer.state)
        ckpt.save_shared(model.get_shared_params())
        ckpt.save_metadata({"epoch": 3})

        config2 = ConfigSchema.from_json(ckpt.load_config())
        assert config2 == config
        model2 = EmbeddingModel(config2, EntityStorage({"node": 20}))
        emb, state = ckpt.partitions.load("node", 0)
        model2.set_table("node", 0, DenseEmbeddingTable(emb, state))
        model2.set_shared_params(ckpt.load_shared())

        rng = np.random.default_rng(1)
        s = model.get_table("node", 0).weights[:5]
        d = model.get_table("node", 0).weights[5:10]
        np.testing.assert_allclose(
            model.score_pairs(0, s, d), model2.score_pairs(0, s, d)
        )
        del rng


class TestStorageRoundtripFuzz:
    """Round-trip fuzzing of the partition store and the LRU cache.

    Random dtypes and shapes, interleaved save/load/drop, and (for the
    cache) random dirty puts / takes / prefetch-style clean loads /
    flushes, checked against a pure-python oracle. The storage layer
    always lands float32 on disk, so the oracle compares float32 casts
    (exact for every input dtype: float64/float32/float16 all embed
    losslessly into or round deterministically to float32).
    """

    DTYPES = [np.float16, np.float32, np.float64]

    def _random_partition(self, rng):
        n = int(rng.integers(1, 12))
        d = int(rng.integers(1, 9))
        dtype = self.DTYPES[int(rng.integers(len(self.DTYPES)))]
        emb = rng.standard_normal((n, d)).astype(dtype)
        state = rng.random(n).astype(dtype)
        return emb, state

    @pytest.mark.parametrize("seed", range(3))
    def test_storage_interleaved_save_load_drop(self, tmp_path, seed):
        store = PartitionedEmbeddingStorage(tmp_path)
        rng = np.random.default_rng(seed)
        keys = [("node", p) for p in range(3)] + [("item", p) for p in range(2)]
        disk: dict = {}
        for _ in range(150):
            key = keys[int(rng.integers(len(keys)))]
            op = rng.random()
            if op < 0.45:
                emb, state = self._random_partition(rng)
                store.save(*key, emb, state)
                disk[key] = (
                    emb.astype(np.float32), state.astype(np.float32)
                )
            elif op < 0.8:
                if key in disk:
                    emb, state = store.load(*key)
                    assert emb.dtype == np.float32
                    np.testing.assert_array_equal(emb, disk[key][0])
                    np.testing.assert_array_equal(state, disk[key][1])
                else:
                    with pytest.raises(StorageError):
                        store.load(*key)
                    assert not store.exists(*key)
            else:
                store.drop(*key)
                disk.pop(key, None)
        for etype in ("node", "item"):
            assert store.stored_partitions(etype) == sorted(
                p for (t, p) in disk if t == etype
            )

    @pytest.mark.parametrize("use_writeback", [False, True])
    @pytest.mark.parametrize("seed", range(3))
    def test_cache_interleaved_ops_match_oracle(
        self, tmp_path, seed, use_writeback
    ):
        """Interleaved put(dirty)/take/prefetch/flush through the cache
        must always reproduce the latest version of each partition,
        covering every dirty-tracking state (clean, dirty-pending,
        dirty-unqueued)."""
        store = PartitionedEmbeddingStorage(tmp_path)
        wb = WritebackQueue(store) if use_writeback else None
        # Unlimited budget: the oracle mirrors cache membership exactly
        # (entries only leave via take). Budget pressure is exercised
        # separately below.
        cache = PartitionCache(store, budget_bytes=None, writeback=wb)
        rng = np.random.default_rng(seed)
        keys = [("node", p) for p in range(4)]
        latest: dict = {}    # key -> float32 oracle of the last version
        in_cache: set = set()
        last_flushed: dict = {}  # key -> float32 oracle of disk contents
        for _ in range(200):
            key = keys[int(rng.integers(len(keys)))]
            op = rng.random()
            if op < 0.4:  # evict-into-cache (dirty put)
                emb, state = self._random_partition(rng)
                cache.put(*key, emb, state, dirty=True)
                latest[key] = (
                    emb.astype(np.float32), state.astype(np.float32)
                )
                in_cache.add(key)
                if wb is not None:
                    last_flushed[key] = latest[key]  # submitted at put
            elif op < 0.7:  # swap-in (take)
                got = cache.take(*key)
                if key in in_cache:
                    expected = latest[key]  # served from memory
                elif key in last_flushed:
                    expected = last_flushed[key]  # synchronous disk read
                else:
                    expected = None  # never stored anywhere
                if expected is None:
                    assert got is None
                else:
                    assert got is not None, key
                    emb, state = got
                    np.testing.assert_array_equal(
                        np.asarray(emb, np.float32), expected[0]
                    )
                    np.testing.assert_array_equal(
                        np.asarray(state, np.float32), expected[1]
                    )
                in_cache.discard(key)
                assert not cache.contains(*key)
            elif op < 0.85:  # prefetch-style clean reload from disk
                if key not in in_cache and key in last_flushed:
                    emb, state = store.load(*key)
                    cache.put(*key, emb, state, dirty=False)
                    in_cache.add(key)
                    latest[key] = last_flushed[key]
            else:  # barrier: flush dirty + drain
                cache.flush_dirty()
                if wb is not None:
                    wb.drain()
                for k in in_cache:
                    last_flushed[k] = latest[k]
            assert {k for k in keys if cache.contains(*k)} == in_cache
        cache.flush_dirty()
        if wb is not None:
            wb.close()
        for k in in_cache:
            last_flushed[k] = latest[k]
        # After the final barrier, disk state matches the last flushed
        # version of every partition that ever reached the store.
        for key, (emb, state) in last_flushed.items():
            got_emb, got_state = store.load(*key)
            np.testing.assert_array_equal(got_emb, emb)
            np.testing.assert_array_equal(got_state, state)

    @pytest.mark.parametrize("budget", [0, 256])
    def test_cache_budget_pressure_never_loses_data(self, tmp_path, budget):
        """Under byte-budget pressure evicted dirty entries must be
        persisted before being dropped: take() falls back to disk and
        still sees the latest version."""
        store = PartitionedEmbeddingStorage(tmp_path)
        wb = WritebackQueue(store)
        cache = PartitionCache(store, budget_bytes=budget, writeback=wb)
        rng = np.random.default_rng(11)
        latest: dict = {}
        keys = [("node", p) for p in range(4)]
        for step in range(120):
            key = keys[int(rng.integers(len(keys)))]
            if rng.random() < 0.6 or key not in latest:
                emb, state = self._random_partition(rng)
                cache.put(*key, emb, state, dirty=True)
                latest[key] = (
                    emb.astype(np.float32), state.astype(np.float32)
                )
            else:
                got = cache.take(*key)
                assert got is not None, key
                np.testing.assert_array_equal(
                    np.asarray(got[0], np.float32), latest[key][0]
                )
                np.testing.assert_array_equal(
                    np.asarray(got[1], np.float32), latest[key][1]
                )
                del latest[key]
        assert cache.evictions > 0
        if budget:
            assert cache.nbytes() <= budget
        wb.close()
