"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import load_edges, main, save_edges
from repro.config import ConfigSchema, EntitySchema, RelationSchema
from repro.graph.edgelist import EdgeList


@pytest.fixture
def workspace(tmp_path):
    """A config + train/test edge files for a ring graph."""
    n = 120
    rng = np.random.default_rng(0)
    src = np.arange(n)
    dst = (src + 1) % n
    es = rng.integers(0, n, 1000)
    ed = (es + rng.integers(1, 3, 1000)) % n
    edges = EdgeList(
        np.concatenate([src, es]),
        np.zeros(n + 1000, dtype=np.int64),
        np.concatenate([dst, ed]),
    )
    config = ConfigSchema(
        entities={"node": EntitySchema()},
        relations=[
            RelationSchema(name="next", lhs="node", rhs="node",
                           operator="translation")
        ],
        dimension=16, num_epochs=4, batch_size=200, chunk_size=50,
        num_batch_negs=10, num_uniform_negs=10, lr=0.1,
    )
    config_path = tmp_path / "config.json"
    config_path.write_text(config.to_json())
    train_path = tmp_path / "train.npz"
    test_path = tmp_path / "test.npz"
    save_edges(train_path, edges[: n + 800])
    save_edges(test_path, edges[n + 800 :])
    return tmp_path, config_path, train_path, test_path


class TestEdgeIO:
    def test_npz_roundtrip(self, tmp_path):
        edges = EdgeList.from_tuples([(0, 0, 1), (1, 1, 2)])
        save_edges(tmp_path / "e.npz", edges)
        assert load_edges(tmp_path / "e.npz") == edges

    def test_npz_weights_roundtrip(self, tmp_path):
        src = np.asarray([0, 1])
        edges = EdgeList(src, src.copy(), src + 1, np.asarray([1.0, 2.0]))
        save_edges(tmp_path / "e.npz", edges)
        out = load_edges(tmp_path / "e.npz")
        np.testing.assert_allclose(out.weights, [1.0, 2.0])

    def test_text_format(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 0 1\n1 0 2\n")
        edges = load_edges(path)
        assert list(edges) == [(0, 0, 1), (1, 0, 2)]

    def test_text_wrong_columns(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="3 columns"):
            load_edges(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_edges(tmp_path / "ghost.npz")


class TestTrainEvalExport:
    def test_full_workflow(self, workspace, capsys):
        tmp_path, config_path, train_path, test_path = workspace
        ckpt = tmp_path / "model"

        rc = main([
            "train", "--config", str(config_path),
            "--edges", str(train_path), "--checkpoint", str(ckpt),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "epoch 0" in out and "checkpoint written" in out

        rc = main([
            "eval", "--checkpoint", str(ckpt),
            "--edges", str(test_path), "--candidates", "50",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MRR" in out

        out_npy = tmp_path / "emb.npy"
        rc = main([
            "export", "--checkpoint", str(ckpt),
            "--entity-type", "node", "--output", str(out_npy),
        ])
        assert rc == 0
        emb = np.load(out_npy)
        assert emb.shape == (120, 16)

    def test_eval_with_filter(self, workspace, capsys):
        tmp_path, config_path, train_path, test_path = workspace
        ckpt = tmp_path / "model"
        main([
            "train", "--config", str(config_path),
            "--edges", str(train_path), "--checkpoint", str(ckpt),
        ])
        rc = main([
            "eval", "--checkpoint", str(ckpt), "--edges", str(test_path),
            "--candidates", "50",
            "--filter", str(train_path), str(test_path),
        ])
        assert rc == 0
        assert "MRR" in capsys.readouterr().out

    def test_explicit_entity_counts(self, workspace, capsys):
        tmp_path, config_path, train_path, _ = workspace
        rc = main([
            "train", "--config", str(config_path),
            "--edges", str(train_path),
            "--entity-counts", json.dumps({"node": 500}),
        ])
        assert rc == 0
        del capsys

    def test_partitioned_requires_checkpoint(self, workspace, capsys):
        tmp_path, config_path, train_path, _ = workspace
        config = ConfigSchema.from_json(config_path.read_text()).replace(
            entities={"node": EntitySchema(num_partitions=2)}
        )
        p2 = tmp_path / "config2.json"
        p2.write_text(config.to_json())
        rc = main([
            "train", "--config", str(p2), "--edges", str(train_path),
        ])
        assert rc == 2
        assert "requires --checkpoint" in capsys.readouterr().err

    def test_partitioned_training_via_cli(self, workspace, capsys):
        tmp_path, config_path, train_path, _ = workspace
        config = ConfigSchema.from_json(config_path.read_text()).replace(
            entities={"node": EntitySchema(num_partitions=2)}
        )
        p2 = tmp_path / "config2.json"
        p2.write_text(config.to_json())
        rc = main([
            "train", "--config", str(p2), "--edges", str(train_path),
            "--checkpoint", str(tmp_path / "pmodel"),
        ])
        assert rc == 0
        assert "done:" in capsys.readouterr().out

    def test_distributed_training_via_cli(self, workspace, capsys):
        """num_machines > 1 routes to the cluster trainer; the pipeline
        flags apply to the partition-server prefetch path."""
        tmp_path, config_path, train_path, test_path = workspace
        config = ConfigSchema.from_json(config_path.read_text()).replace(
            entities={"node": EntitySchema(num_partitions=4)},
            num_machines=2,
            num_epochs=2,
        )
        p2 = tmp_path / "config_dist.json"
        p2.write_text(config.to_json())
        rc = main([
            "train", "--config", str(p2), "--edges", str(train_path),
            "--pipeline", "--verbose",
            "--checkpoint", str(tmp_path / "dmodel"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 machines" in out
        assert "reservation accuracy" in out
        assert "checkpoint written" in out
        # The checkpoint is evaluable like any single-machine one.
        rc = main([
            "eval", "--checkpoint", str(tmp_path / "dmodel"),
            "--edges", str(test_path), "--candidates", "20",
        ])
        assert rc == 0


class TestCompressionFlags:
    def test_compressed_partitioned_training(self, workspace, capsys):
        """--partition-compression applies to the single-machine swap
        and checkpoint storage: the partition files on disk must carry
        the int8 codec marker (self-describing format)."""
        tmp_path, config_path, train_path, _ = workspace
        config = ConfigSchema.from_json(config_path.read_text()).replace(
            entities={"node": EntitySchema(num_partitions=2)},
            num_epochs=2,
        )
        p2 = tmp_path / "config2.json"
        p2.write_text(config.to_json())
        rc = main([
            "train", "--config", str(p2), "--edges", str(train_path),
            "--checkpoint", str(tmp_path / "cmodel"),
            "--partition-compression", "int8",
        ])
        assert rc == 0
        assert "done:" in capsys.readouterr().out
        part_files = sorted((tmp_path / "cmodel").rglob("part-*.npz"))
        assert part_files
        for path in part_files:
            with np.load(path) as payload:
                assert str(payload["codec"]) == "int8"
                assert payload["embeddings_q8"].dtype == np.int8

    def test_distributed_wire_summary(self, workspace, capsys):
        tmp_path, config_path, train_path, _ = workspace
        config = ConfigSchema.from_json(config_path.read_text()).replace(
            entities={"node": EntitySchema(num_partitions=4)},
            num_machines=2,
            num_epochs=2,
        )
        p2 = tmp_path / "config_dist.json"
        p2.write_text(config.to_json())
        rc = main([
            "train", "--config", str(p2), "--edges", str(train_path),
            "--checkpoint", str(tmp_path / "dmodel"),
            "--partition-compression", "int8", "--writeback-delta",
            "--verbose",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wire" in out
        assert "int8" in out

    def test_unknown_codec_rejected_by_parser(self, workspace, capsys):
        tmp_path, config_path, train_path, _ = workspace
        with pytest.raises(SystemExit):
            main([
                "train", "--config", str(config_path),
                "--edges", str(train_path),
                "--partition-compression", "zstd",
            ])
        capsys.readouterr()
