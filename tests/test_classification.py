"""Tests for the node-classification harness."""

import numpy as np
import pytest

from repro.eval.classification import (
    LogisticRegressionOvR,
    f1_scores,
    multilabel_cross_validation,
)


def _separable_data(n=200, d=4, c=3, seed=0):
    """Clusters in feature space, one label per cluster."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((c, d)) * 4
    y = rng.integers(0, c, n)
    X = centers[y] + 0.3 * rng.standard_normal((n, d))
    Y = np.zeros((n, c), dtype=bool)
    Y[np.arange(n), y] = True
    return X, Y


class TestLogisticRegressionOvR:
    def test_separable_problem_high_accuracy(self):
        X, Y = _separable_data()
        clf = LogisticRegressionOvR(l2=0.1).fit(X, Y)
        pred = clf.predict_top_k(X, Y.sum(axis=1))
        micro, macro = f1_scores(Y, pred)
        assert micro > 0.95 and macro > 0.95

    def test_decision_function_shape(self):
        X, Y = _separable_data(n=50, c=4)
        clf = LogisticRegressionOvR().fit(X, Y)
        assert clf.decision_function(X).shape == (50, 4)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionOvR().decision_function(np.zeros((1, 2)))

    def test_degenerate_class_handled(self):
        """A class with no positive examples must not crash."""
        X, Y = _separable_data(n=60, c=2)
        Y = np.hstack([Y, np.zeros((60, 1), dtype=bool)])
        clf = LogisticRegressionOvR().fit(X, Y)
        scores = clf.decision_function(X)
        # The empty class should essentially never win.
        assert (scores[:, 2] < scores[:, :2].max(axis=1)).all()

    def test_l2_shrinks_coefficients(self):
        X, Y = _separable_data(n=100)
        small = LogisticRegressionOvR(l2=0.01).fit(X, Y)
        large = LogisticRegressionOvR(l2=100.0).fit(X, Y)
        assert np.abs(large.coef_).sum() < np.abs(small.coef_).sum()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticRegressionOvR().fit(np.zeros((5, 2)), np.zeros((4, 3)))

    def test_invalid_l2(self):
        with pytest.raises(ValueError):
            LogisticRegressionOvR(l2=-1)

    def test_predict_top_k_respects_counts(self):
        X, Y = _separable_data(n=30, c=3)
        clf = LogisticRegressionOvR().fit(X, Y)
        counts = np.asarray([2] * 30)
        pred = clf.predict_top_k(X, counts)
        assert (pred.sum(axis=1) == 2).all()


class TestF1Scores:
    def test_perfect(self):
        Y = np.asarray([[1, 0], [0, 1]], dtype=bool)
        micro, macro = f1_scores(Y, Y)
        assert micro == 1.0 and macro == 1.0

    def test_all_wrong(self):
        true = np.asarray([[1, 0], [1, 0]], dtype=bool)
        pred = np.asarray([[0, 1], [0, 1]], dtype=bool)
        micro, macro = f1_scores(true, pred)
        assert micro == 0.0 and macro == 0.0

    def test_manual_micro(self):
        true = np.asarray([[1, 0], [1, 1]], dtype=bool)
        pred = np.asarray([[1, 1], [0, 1]], dtype=bool)
        micro, _ = f1_scores(true, pred)
        # tp=2, fp=1, fn=1 → micro F1 = 2*2/(2*2+1+1)
        assert micro == pytest.approx(4 / 6)

    def test_macro_ignores_absent_classes(self):
        true = np.asarray([[1, 0, 0]], dtype=bool)
        pred = np.asarray([[1, 0, 0]], dtype=bool)
        _, macro = f1_scores(true, pred)
        assert macro == 1.0  # classes 1, 2 absent → excluded

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            f1_scores(np.zeros((2, 2), bool), np.zeros((3, 2), bool))


class TestCrossValidation:
    def test_separable_scores_high(self):
        X, Y = _separable_data(n=300)
        res = multilabel_cross_validation(
            X, Y, num_folds=5, rng=np.random.default_rng(0)
        )
        assert res.micro_f1 > 0.9
        assert res.macro_f1 > 0.9
        assert res.num_folds == 5

    def test_unlabelled_rows_excluded(self):
        X, Y = _separable_data(n=200)
        Y[:100] = False  # half unlabelled
        res = multilabel_cross_validation(
            X, Y, num_folds=4, rng=np.random.default_rng(0)
        )
        assert res.micro_f1 > 0.8

    def test_too_few_samples(self):
        X, Y = _separable_data(n=5)
        with pytest.raises(ValueError, match="folds"):
            multilabel_cross_validation(X, Y, num_folds=10)

    def test_result_str(self):
        X, Y = _separable_data(n=100)
        res = multilabel_cross_validation(
            X, Y, num_folds=3, rng=np.random.default_rng(0)
        )
        assert "micro-F1" in str(res)

    def test_random_features_near_chance(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((300, 4))
        Y = np.zeros((300, 3), dtype=bool)
        Y[np.arange(300), rng.integers(0, 3, 300)] = True
        res = multilabel_cross_validation(
            X, Y, num_folds=3, rng=np.random.default_rng(0)
        )
        assert res.micro_f1 < 0.55
