"""Tests for graph statistics."""

import numpy as np
import pytest

from repro.datasets import social_network, twitter_like
from repro.graph.analysis import gini, power_law_exponent, summarize
from repro.graph.edgelist import EdgeList


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(100, 5.0)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        v = np.zeros(1000)
        v[0] = 100.0
        assert gini(v) > 0.99

    def test_known_value(self):
        # Two people: one has everything → gini = 1/2 for n=2.
        assert gini(np.asarray([0.0, 1.0])) == pytest.approx(0.5)

    def test_zero_total(self):
        assert gini(np.zeros(5)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini(np.empty(0))
        with pytest.raises(ValueError):
            gini(np.asarray([-1.0, 2.0]))


class TestPowerLawExponent:
    def test_recovers_planted_exponent(self):
        """Degrees sampled from a discrete Pareto(α) give back ≈ α."""
        rng = np.random.default_rng(0)
        alpha = 2.5
        u = rng.random(200_000)
        degrees = np.floor((1 - u) ** (-1 / (alpha - 1))).astype(int)
        # The continuous-tail approximation is accurate for larger d_min.
        est = power_law_exponent(degrees, d_min=10)
        assert est == pytest.approx(alpha, abs=0.35)

    def test_regular_graph_finite_and_large(self):
        # A degenerate all-equal sample still yields a finite estimate.
        est = power_law_exponent(np.full(10, 1), d_min=1)
        assert np.isfinite(est) and est > 1

    def test_empty_sample(self):
        with pytest.raises(ValueError):
            power_law_exponent(np.asarray([0, 0]), d_min=1)


class TestSummarize:
    def test_basic_fields(self):
        edges = EdgeList.from_tuples(
            [(0, 0, 1), (1, 0, 0), (1, 1, 2), (2, 0, 0)]
        )
        s = summarize(edges, num_nodes=4)
        assert s.num_edges == 4
        assert s.num_relations == 2
        assert s.num_active_nodes == 3
        # (0,1) and (1,0) reciprocated; 2/4 distinct pairs reciprocal.
        assert s.reciprocity == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(EdgeList.empty(), 10)

    def test_social_generator_is_heavy_tailed(self):
        """Synthetic social graphs must show the statistics the paper's
        datasets have: skewed in-degree, finite power-law exponent."""
        g = social_network(3000, 40_000, popularity_exponent=1.0, seed=0)
        s = summarize(g.edges, g.num_nodes)
        assert s.in_degree_gini > 0.3
        assert 1.2 < s.in_degree_exponent < 5.0
        assert s.max_in_degree > 20 * s.mean_out_degree

    def test_reciprocity_ordering_matches_presets(self):
        """LiveJournal-like graphs are far more reciprocal than
        Twitter-like ones (friendships vs follows)."""
        from repro.datasets import livejournal_like

        lj = livejournal_like(num_nodes=2000, seed=0)
        tw = twitter_like(num_nodes=2000, seed=0)
        s_lj = summarize(lj.edges, lj.num_nodes)
        s_tw = summarize(tw.edges, tw.num_nodes)
        assert s_lj.reciprocity > 1.3 * s_tw.reciprocity

    def test_str(self):
        g = social_network(500, 3000, seed=1)
        assert "edges" in str(summarize(g.edges, g.num_nodes))
