"""Tests for whole-model checkpointing (save_model / load_model)."""

import numpy as np
import pytest

from repro.config import ConfigSchema, EntitySchema, RelationSchema
from repro.core.checkpointing import load_model, save_model
from repro.core.model import EmbeddingModel
from repro.core.trainer import Trainer
from repro.graph.edgelist import EdgeList
from repro.graph.entity_storage import EntityStorage
from repro.graph.partitioning import partition_entities


def _graph(n=100, seed=0):
    rng = np.random.default_rng(seed)
    src = np.arange(n)
    dst = (src + 1) % n
    es = rng.integers(0, n, 500)
    ed = (es + 1) % n
    return EdgeList(
        np.concatenate([src, es]),
        np.zeros(n + 500, dtype=np.int64),
        np.concatenate([dst, ed]),
    )


def _trained_model(n=100, nparts=1, seed=0):
    config = ConfigSchema(
        entities={"node": EntitySchema(num_partitions=nparts)},
        relations=[
            RelationSchema(name="r", lhs="node", rhs="node",
                           operator="translation")
        ],
        dimension=8, num_epochs=2, batch_size=100, chunk_size=20,
        num_batch_negs=5, num_uniform_negs=5, seed=seed,
    )
    entities = EntityStorage({"node": n})
    entities.set_partitioning(
        "node", partition_entities(n, nparts, np.random.default_rng(seed))
    )
    model = EmbeddingModel(config, entities)
    model.init_all_partitions(np.random.default_rng(seed))
    return config, entities, model


class TestSaveLoadRoundtrip:
    def test_scores_identical_after_roundtrip(self, tmp_path):
        config, entities, model = _trained_model()
        Trainer(config, model, entities).train(_graph())
        save_model(tmp_path, model, entities, metadata={"epoch": 1})

        config2, entities2, model2, metadata = load_model(tmp_path)
        assert metadata["epoch"] == 1
        assert config2 == config
        assert entities2.count("node") == 100
        emb1 = model.global_embeddings("node")
        emb2 = model2.global_embeddings("node")
        np.testing.assert_array_equal(emb1, emb2)
        np.testing.assert_array_equal(
            model.rel_params[0], model2.rel_params[0]
        )

    def test_optimizer_state_restored(self, tmp_path):
        config, entities, model = _trained_model()
        Trainer(config, model, entities).train(_graph())
        save_model(tmp_path, model, entities)
        _, _, model2, _ = load_model(tmp_path)
        np.testing.assert_array_equal(
            model.get_table("node", 0).optimizer.state,
            model2.get_table("node", 0).optimizer.state,
        )
        np.testing.assert_array_equal(
            model.rel_optimizers[0].state, model2.rel_optimizers[0].state
        )

    def test_partition_layout_restored(self, tmp_path):
        config, entities, model = _trained_model(nparts=4)
        save_model(tmp_path, model, entities)
        _, entities2, model2, _ = load_model(tmp_path)
        p1 = entities.partitioning("node")
        p2 = entities2.partitioning("node")
        np.testing.assert_array_equal(p1.part_of, p2.part_of)
        np.testing.assert_array_equal(p1.offset_of, p2.offset_of)
        # Global embedding stitching must agree.
        np.testing.assert_array_equal(
            model.global_embeddings("node"),
            model2.global_embeddings("node"),
        )

    def test_resume_training_continues(self, tmp_path):
        """A loaded model can keep training without reinitialisation."""
        config, entities, model = _trained_model()
        edges = _graph()
        Trainer(config, model, entities).train(edges)
        save_model(tmp_path, model, entities)
        _, entities2, model2, _ = load_model(tmp_path)
        stats = Trainer(
            config.replace(num_epochs=1), model2, entities2
        ).train(edges)
        assert stats.epochs[0].num_edges == len(edges)


class TestTrainerCheckpointIntegration:
    def test_checkpoint_dir_writes_every_epoch(self, tmp_path):
        config, entities, model = _trained_model()
        config = config.replace(
            checkpoint_dir=str(tmp_path / "ckpt"), num_epochs=3
        )
        Trainer(config, model, entities).train(_graph())
        _, _, model2, metadata = load_model(tmp_path / "ckpt")
        assert metadata["epoch"] == 2
        np.testing.assert_array_equal(
            model.global_embeddings("node"),
            model2.global_embeddings("node"),
        )


class TestFeaturizedCheckpoint:
    def test_feature_weights_in_shared(self, tmp_path):
        from repro.core.tables import FeaturizedEmbeddingTable

        config = ConfigSchema(
            entities={
                "user": EntitySchema(),
                "tagged": EntitySchema(featurized=True, num_features=6),
            },
            relations=[RelationSchema(name="r", lhs="user", rhs="tagged")],
            dimension=4,
        )
        entities = EntityStorage({"user": 10, "tagged": 5})
        model = EmbeddingModel(config, entities)
        model.init_partition("user", 0, np.random.default_rng(0))
        table = FeaturizedEmbeddingTable.create(
            [[0], [1], [2], [3, 4], [5]], 6, 4, np.random.default_rng(1)
        )
        model.set_table("tagged", 0, table)
        save_model(tmp_path, model, entities)

        from repro.graph.storage import CheckpointStorage

        shared = CheckpointStorage(tmp_path).load_shared()
        assert "features_tagged" in shared
        np.testing.assert_array_equal(
            shared["features_tagged"], table.feature_weights
        )

    def test_load_skips_featurized_tables(self, tmp_path):
        """load_model leaves featurized types for the caller to attach."""
        self.test_feature_weights_in_shared(tmp_path)
        _, _, model, _ = load_model(tmp_path)
        assert model.has_table("user", 0)
        assert not model.has_table("tagged", 0)


class TestErrorPaths:
    def test_load_missing_checkpoint(self, tmp_path):
        from repro.graph.storage import StorageError

        with pytest.raises(StorageError):
            load_model(tmp_path / "nope")
