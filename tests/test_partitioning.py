"""Tests for entity partitioning and edge bucketing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ConfigSchema, EntitySchema, RelationSchema
from repro.graph.edgelist import EdgeList
from repro.graph.entity_storage import EntityStorage
from repro.graph.partitioning import bucket_edges, partition_entities


class TestPartitionEntities:
    @settings(max_examples=30, deadline=None)
    @given(
        count=st.integers(1, 500),
        nparts=st.integers(1, 16),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_bijection_and_balance(self, count, nparts, seed):
        if nparts > count:
            return
        p = partition_entities(count, nparts, np.random.default_rng(seed))
        # Every entity appears exactly once across partitions.
        seen = np.concatenate(p.global_of)
        assert sorted(seen.tolist()) == list(range(count))
        # Balance: sizes differ by at most 1.
        assert p.part_sizes.max() - p.part_sizes.min() <= 1
        assert p.part_sizes.sum() == count
        # (part, offset) <-> global consistency.
        for g in range(count):
            part, off = int(p.part_of[g]), int(p.offset_of[g])
            assert p.global_of[part][off] == g

    def test_too_many_partitions(self):
        with pytest.raises(ValueError):
            partition_entities(3, 5, np.random.default_rng(0))

    def test_to_local_to_global_roundtrip(self):
        p = partition_entities(20, 4, np.random.default_rng(1))
        ids = np.arange(20)
        parts, offs = p.to_local(ids)
        for part in range(4):
            mask = parts == part
            back = p.to_global(part, offs[mask])
            np.testing.assert_array_equal(back, ids[mask])


def _setup(nparts, num_nodes=40, num_edges=200, seed=0):
    config = ConfigSchema(
        entities={"node": EntitySchema(num_partitions=nparts)},
        relations=[
            RelationSchema(name="a", lhs="node", rhs="node"),
            RelationSchema(name="b", lhs="node", rhs="node"),
        ],
        dimension=4,
    )
    entities = EntityStorage({"node": num_nodes})
    entities.set_partitioning(
        "node",
        partition_entities(num_nodes, nparts, np.random.default_rng(seed)),
    )
    rng = np.random.default_rng(seed + 1)
    edges = EdgeList(
        rng.integers(0, num_nodes, num_edges),
        rng.integers(0, 2, num_edges),
        rng.integers(0, num_nodes, num_edges),
    )
    return config, entities, edges


class TestBucketEdges:
    @settings(max_examples=15, deadline=None)
    @given(nparts=st.integers(1, 6), seed=st.integers(0, 1000))
    def test_every_edge_in_exactly_one_bucket(self, nparts, seed):
        config, entities, edges = _setup(nparts, seed=seed)
        bucketed = bucket_edges(edges, config, entities)
        assert bucketed.num_edges() == len(edges)
        assert bucketed.nparts_lhs == nparts
        assert bucketed.nparts_rhs == nparts

    def test_bucket_assignment_correct(self):
        config, entities, edges = _setup(4)
        bucketed = bucket_edges(edges, config, entities)
        p = entities.partitioning("node")
        for (bl, br), bucket in bucketed.buckets.items():
            # Recover global ids from partition-local offsets.
            srcs = p.to_global(bl, bucket.src)
            dsts = p.to_global(br, bucket.dst)
            np.testing.assert_array_equal(p.part_of[srcs], bl)
            np.testing.assert_array_equal(p.part_of[dsts], br)

    def test_local_offsets_in_range(self):
        config, entities, edges = _setup(3)
        bucketed = bucket_edges(edges, config, entities)
        for (bl, br), bucket in bucketed.buckets.items():
            assert bucket.src.max() < entities.part_size("node", bl)
            assert bucket.dst.max() < entities.part_size("node", br)

    def test_relations_preserved(self):
        config, entities, edges = _setup(2)
        bucketed = bucket_edges(edges, config, entities)
        total_by_rel = np.zeros(2, dtype=int)
        for bucket in bucketed.buckets.values():
            total_by_rel += np.bincount(bucket.rel, minlength=2)
        np.testing.assert_array_equal(
            total_by_rel, np.bincount(edges.rel, minlength=2)
        )

    def test_weights_carried(self):
        config, entities, edges = _setup(2)
        w = np.random.default_rng(5).random(len(edges)) + 0.1
        edges = EdgeList(edges.src, edges.rel, edges.dst, w)
        bucketed = bucket_edges(edges, config, entities)
        total_w = sum(b.weights.sum() for b in bucketed.buckets.values())
        assert total_w == pytest.approx(w.sum())

    def test_single_partition_single_bucket(self):
        config, entities, edges = _setup(1)
        bucketed = bucket_edges(edges, config, entities)
        assert set(bucketed.buckets) == {(0, 0)}
        # With one partition offsets are global ids.
        np.testing.assert_array_equal(
            np.sort(bucketed.buckets[(0, 0)].src), np.sort(edges.src)
        )

    def test_one_sided_partitioning(self):
        """Figure 1 (centre): only sources partitioned → P buckets."""
        config = ConfigSchema(
            entities={
                "user": EntitySchema(num_partitions=3),
                "item": EntitySchema(),
            },
            relations=[RelationSchema(name="buys", lhs="user", rhs="item")],
            dimension=4,
        )
        entities = EntityStorage({"user": 30, "item": 10})
        entities.set_partitioning(
            "user", partition_entities(30, 3, np.random.default_rng(0))
        )
        rng = np.random.default_rng(1)
        edges = EdgeList(
            rng.integers(0, 30, 100),
            np.zeros(100, dtype=np.int64),
            rng.integers(0, 10, 100),
        )
        bucketed = bucket_edges(edges, config, entities)
        assert bucketed.nparts_lhs == 3 and bucketed.nparts_rhs == 1
        assert all(br == 0 for (_, br) in bucketed.buckets)

    def test_mismatched_grids_rejected(self):
        config = ConfigSchema(
            entities={
                "a": EntitySchema(num_partitions=2),
                "b": EntitySchema(num_partitions=3),
            },
            relations=[
                RelationSchema(name="r1", lhs="a", rhs="a"),
                RelationSchema(name="r2", lhs="b", rhs="b"),
            ],
            dimension=4,
        )
        entities = EntityStorage({"a": 10, "b": 10})
        entities.set_partitioning(
            "a", partition_entities(10, 2, np.random.default_rng(0))
        )
        entities.set_partitioning(
            "b", partition_entities(10, 3, np.random.default_rng(0))
        )
        edges = EdgeList.from_tuples([(0, 0, 1)])
        with pytest.raises(ValueError, match="share one partition count"):
            bucket_edges(edges, config, entities)

    def test_empty_edges(self):
        config, entities, _ = _setup(2)
        bucketed = bucket_edges(EdgeList.empty(), config, entities)
        assert bucketed.num_edges() == 0
        assert bucketed.nonempty_buckets() == []

    def test_edges_for_missing_bucket_is_empty(self):
        config, entities, edges = _setup(2)
        bucketed = bucket_edges(edges[:1], config, entities)
        # Only one bucket can be non-empty with a single edge.
        assert len(bucketed.nonempty_buckets()) == 1
        for b in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            e = bucketed.edges_for(b)
            assert len(e) in (0, 1)


class TestEntityStorage:
    def test_counts(self):
        es = EntityStorage({"a": 5, "b": 10})
        assert es.count("a") == 5
        assert "b" in es and "c" not in es

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            EntityStorage({"a": 0})

    def test_default_identity_partitioning(self):
        es = EntityStorage({"a": 7})
        p = es.partitioning("a")
        assert p.num_partitions == 1
        np.testing.assert_array_equal(p.offset_of, np.arange(7))

    def test_set_partitioning_validates_count(self):
        es = EntityStorage({"a": 7})
        wrong = partition_entities(5, 2, np.random.default_rng(0))
        with pytest.raises(ValueError, match="covers 5"):
            es.set_partitioning("a", wrong)

    def test_unknown_type(self):
        es = EntityStorage({"a": 7})
        with pytest.raises(KeyError):
            es.set_partitioning(
                "zzz", partition_entities(7, 2, np.random.default_rng(0))
            )
