"""Shared fixtures.

``REPRO_LOCKDEP=1`` turns every test into a race test: locks created
during the test are instrumented for lock-order-cycle detection and the
partition ownership tracker is armed, and the test fails if it produced
a potential deadlock or an illegal ownership transition (see
``repro/analysis/lockdep.py`` and ``CONCURRENCY.md``). CI runs the
suite once in this mode; locally::

    REPRO_LOCKDEP=1 PYTHONPATH=src python -m pytest -x -q
"""

import os

import pytest

RUN_LOCKDEP = os.environ.get("REPRO_LOCKDEP") == "1"


@pytest.fixture(autouse=True)
def lockdep_harness():
    if not RUN_LOCKDEP:
        yield None
        return
    from repro.analysis import hooks, lockdep

    registry = lockdep.LockdepRegistry()
    tracker = lockdep.PartitionOwnershipTracker()
    registry.install()
    hooks.install_ownership_tracker(tracker)
    try:
        yield (registry, tracker)
    finally:
        hooks.uninstall_ownership_tracker()
        registry.uninstall()
    # Outside the finally: report violations only after the patches are
    # rolled back, so one failing test cannot poison the next.
    registry.assert_no_cycles()
    tracker.assert_clean()
