"""Tests for the runtime race-detection harness (repro.analysis.lockdep).

Three layers: the lock-order cycle detector on seeded good/bad
acquisition patterns, the partition ownership state machine on legal
and illegal lifecycles, and an end-to-end stress test running real
pipelined (single-machine and distributed) training under full
instrumentation with the strict flag where a seeded schedule must come
out clean.
"""

import threading

import numpy as np
import pytest

from repro.analysis import hooks, lockdep
from repro.analysis.lockdep import (
    LockdepRegistry,
    LockOrderError,
    OwnershipError,
    PartitionOwnershipTracker,
)
from repro.config import (
    ConfigSchema,
    EntitySchema,
    RelationSchema,
    single_entity_config,
)
from repro.core.model import EmbeddingModel
from repro.core.trainer import Trainer
from repro.distributed.cluster import DistributedTrainer
from repro.graph.edgelist import EdgeList
from repro.graph.entity_storage import EntityStorage
from repro.graph.partitioning import partition_entities
from repro.graph.storage import PartitionedEmbeddingStorage


class TestLockOrder:
    def test_consistent_order_is_clean(self):
        reg = LockdepRegistry()
        a = reg.make_lock("A")
        b = reg.make_lock("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        reg.assert_no_cycles()

    def test_ab_ba_cycle_detected(self):
        reg = LockdepRegistry()
        a = reg.make_lock("A")
        b = reg.make_lock("B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        with pytest.raises(LockOrderError, match="cycle"):
            reg.assert_no_cycles()

    def test_strict_raises_at_the_closing_edge(self):
        reg = LockdepRegistry(strict=True)
        a = reg.make_lock("A")
        b = reg.make_lock("B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                a.acquire()

    def test_three_lock_cycle_detected(self):
        reg = LockdepRegistry()
        a, b, c = (reg.make_lock(n) for n in "ABC")
        with a, b:
            pass
        with b, c:
            pass
        with c, a:
            pass
        with pytest.raises(LockOrderError):
            reg.assert_no_cycles()

    def test_reentrant_rlock_adds_no_self_edge(self):
        reg = LockdepRegistry()
        r = reg.make_rlock("R")
        with r:
            with r:
                pass
        assert reg.edges == {}
        reg.assert_no_cycles()

    def test_cross_thread_opposite_order_detected(self):
        """The canonical deadlock: two threads taking A/B in opposite
        orders — flagged even though this run never wedged."""
        reg = LockdepRegistry()
        a = reg.make_lock("A")
        b = reg.make_lock("B")
        barrier = threading.Barrier(2, timeout=10)

        def forward():
            with a:
                barrier.wait()
                with b:
                    pass

        def backward():
            barrier.wait()
            # Serialise after forward() has recorded A->B so the test
            # observes the edge deterministically, not a real deadlock.
            with a:
                pass
            with b:
                with a:
                    pass

        t1 = threading.Thread(target=forward)
        t2 = threading.Thread(target=backward)
        t1.start(), t2.start()
        t1.join(timeout=10), t2.join(timeout=10)
        with pytest.raises(LockOrderError):
            reg.assert_no_cycles()

    def test_condition_wait_releases_held_state(self):
        """Waiting on an instrumented condition must not pin a hold
        edge: another thread acquiring cv-then-other while the waiter
        sleeps holding (conceptually) cv must not create a false cycle."""
        reg = LockdepRegistry()
        cv = reg.make_condition(name="CV")
        other = reg.make_lock("OTHER")
        ready = threading.Event()

        def waiter():
            with cv:
                ready.set()
                cv.wait(timeout=10)
                # Re-acquired after the wait: taking OTHER now records
                # CV->OTHER, matching the notifier's order.
                with other:
                    pass

        t = threading.Thread(target=waiter)
        t.start()
        assert ready.wait(timeout=10)
        with cv:
            with other:  # CV -> OTHER, same direction
                pass
            cv.notify_all()
        t.join(timeout=10)
        reg.assert_no_cycles()

    def test_install_patches_threading_factories(self):
        reg = LockdepRegistry()
        plain = threading.Lock
        with reg:
            patched = threading.Lock()
            assert isinstance(patched, lockdep._InstrumentedLock)
            # Stdlib primitives built on Condition still work.
            ev = threading.Event()
            ev.set()
            assert ev.wait(timeout=1)
        assert threading.Lock is plain
        reg.assert_no_cycles()


class TestOwnership:
    def test_legal_pipeline_lifecycle(self):
        tracker = PartitionOwnershipTracker(strict=True)
        view = tracker.register_owner("m0")
        view.staged("user", 0)  # prefetch fill
        view.resident("user", 0, from_cache=True)  # take
        view.parked("user", 0)  # evict dirty
        view.landed("user", 0)  # push-back landed
        view.dropped("user", 0)  # budget eviction
        view.resident("user", 0, from_cache=False)  # sync re-fetch
        view.saved("user", 0)  # serial blocking save
        tracker.assert_clean()
        assert tracker.transitions == 7

    def test_double_resident_rejected(self):
        tracker = PartitionOwnershipTracker(strict=True)
        view = tracker.register_owner("m0")
        view.resident("user", 3, from_cache=False)
        with pytest.raises(OwnershipError, match="resident -> resident"):
            view.resident("user", 3, from_cache=False)

    def test_park_of_self_initialised_partition_is_legal(self):
        """Residency can begin invisibly (the model initialises a
        partition in place), so a park may be a partition's first
        tracked event."""
        tracker = PartitionOwnershipTracker(strict=True)
        view = tracker.register_owner("m0")
        view.parked("user", 1)
        view.landed("user", 1)
        tracker.assert_clean()

    def test_double_park_rejected(self):
        tracker = PartitionOwnershipTracker(strict=True)
        view = tracker.register_owner("m0")
        view.parked("user", 1)
        with pytest.raises(OwnershipError, match="writeback -> writeback"):
            view.parked("user", 1)

    def test_park_of_staged_copy_rejected(self):
        """A prefetched copy must be adopted (resident) before it can
        be dirty-evicted."""
        tracker = PartitionOwnershipTracker(strict=True)
        view = tracker.register_owner("m0")
        view.staged("user", 1)
        with pytest.raises(OwnershipError):
            view.parked("user", 1)

    def test_prefetch_stomping_resident_rejected(self):
        tracker = PartitionOwnershipTracker(strict=True)
        view = tracker.register_owner("m0")
        view.resident("user", 2, from_cache=False)
        with pytest.raises(OwnershipError):
            view.staged("user", 2)

    def test_per_owner_isolation(self):
        """Machine B's stale staged copy is legal while machine A holds
        the partition resident — states are per owner."""
        tracker = PartitionOwnershipTracker(strict=True)
        a = tracker.register_owner("mA")
        b = tracker.register_owner("mB")
        a.resident("user", 0, from_cache=False)
        b.staged("user", 0)
        tracker.assert_clean()

    def test_non_strict_records_and_continues(self):
        tracker = PartitionOwnershipTracker()
        view = tracker.register_owner("m0")
        view.staged("user", 0)
        view.parked("user", 0)  # illegal: staged copy never adopted
        view.landed("user", 0)  # legal from the applied state
        assert len(tracker.violations) == 1
        with pytest.raises(OwnershipError):
            tracker.assert_clean()


class _Harness:
    """Installs full instrumentation for the duration of a with-block
    and checks zero cycles / zero illegal transitions on exit."""

    def __enter__(self):
        self.registry = LockdepRegistry()
        self.tracker = PartitionOwnershipTracker()
        self.registry.install()
        hooks.install_ownership_tracker(self.tracker)
        return self

    def __exit__(self, exc_type, *rest):
        hooks.uninstall_ownership_tracker()
        self.registry.uninstall()
        if exc_type is None:
            self.registry.assert_no_cycles()
            self.tracker.assert_clean()


def _edges(n=200, extra=1500, seed=0):
    rng = np.random.default_rng(seed)
    src = np.arange(n)
    dst = (src + 1) % n
    es = rng.integers(0, n, extra)
    ed = (es + rng.integers(1, 4, extra)) % n
    return EdgeList(
        np.concatenate([src, es]),
        np.zeros(n + extra, dtype=np.int64),
        np.concatenate([dst, ed]),
    )


def _cluster(num_machines, nparts, n=200, seed=0, **kw):
    defaults = dict(
        dimension=8, num_epochs=2, batch_size=200, chunk_size=50,
        lr=0.1, num_batch_negs=5, num_uniform_negs=5,
        parameter_sync_interval=2,
    )
    defaults.update(kw)
    config = ConfigSchema(
        entities={"node": EntitySchema(num_partitions=nparts)},
        relations=[
            RelationSchema(
                name="link", lhs="node", rhs="node", operator="translation"
            )
        ],
        num_machines=num_machines,
        **defaults,
    )
    entities = EntityStorage({"node": n})
    entities.set_partitioning(
        "node", partition_entities(n, nparts, np.random.default_rng(seed))
    )
    return DistributedTrainer(config, entities, seed=seed)


class TestInstrumentedTraining:
    def test_pipelined_trainer_clean(self, tmp_path):
        """Single-machine pipelined training (prefetch + writeback +
        real partition swaps) under full instrumentation."""
        n, nparts = 200, 4
        config = single_entity_config(
            num_partitions=nparts, dimension=8, num_epochs=2,
            batch_size=200, chunk_size=50, seed=5, pipeline=True,
        )
        with _Harness() as h:
            entities = EntityStorage({"node": n})
            entities.set_partitioning(
                "node",
                partition_entities(n, nparts, np.random.default_rng(5)),
            )
            model = EmbeddingModel(config, entities, np.random.default_rng(5))
            storage = PartitionedEmbeddingStorage(tmp_path / "parts")
            trainer = Trainer(
                config, model, entities, storage, np.random.default_rng(5)
            )
            trainer.train(_edges(n, seed=5))
        assert h.tracker.transitions > 0, "ownership hooks never fired"

    def test_distributed_seeded_schedule_clean(self):
        """Thread-mode distributed training — the full stack (lock
        server, partition server, per-machine pipelines, writeback
        commits) under instrumentation, over a few seeds so bucket
        schedules differ."""
        for seed in (0, 1, 2):
            with _Harness() as h:
                trainer = _cluster(2, 4, seed=seed, pipeline=True)
                model, stats = trainer.train(_edges(seed=seed))
            assert model is not None
            assert h.tracker.transitions > 0, "ownership hooks never fired"

    def test_distributed_serial_path_clean(self):
        """The serial (non-pipelined) distributed path reports through
        the backend adapter instead of a pipeline; it must be clean
        too."""
        with _Harness() as h:
            trainer = _cluster(2, 4, seed=3, pipeline=False)
            trainer.train(_edges(seed=3))
        assert h.tracker.transitions > 0
