"""Tests for shared numeric utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import sample_from_cdf


class TestSampleFromCdf:
    def test_degenerate_single_bin(self):
        cdf = np.asarray([1.0])
        out = sample_from_cdf(cdf, 100, np.random.default_rng(0))
        assert np.all(out == 0)

    def test_respects_distribution(self):
        # 90% mass on bin 0, 10% on bin 1.
        cdf = np.asarray([0.9, 1.0])
        out = sample_from_cdf(cdf, 50_000, np.random.default_rng(1))
        frac0 = (out == 0).mean()
        assert 0.88 < frac0 < 0.92

    def test_never_out_of_range_even_with_truncated_cdf(self):
        # A CDF whose last entry is slightly below 1 (float rounding).
        cdf = np.asarray([0.5, 1.0 - 1e-12])
        out = sample_from_cdf(cdf, 10_000, np.random.default_rng(2))
        assert out.max() <= 1

    def test_tuple_size(self):
        cdf = np.linspace(0.1, 1.0, 10)
        out = sample_from_cdf(cdf, (3, 4), np.random.default_rng(3))
        assert out.shape == (3, 4)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 50), seed=st.integers(0, 2**31 - 1))
    def test_in_range_property(self, n, seed):
        rng = np.random.default_rng(seed)
        w = rng.random(n) + 1e-9
        cdf = np.cumsum(w)
        cdf /= cdf[-1]
        out = sample_from_cdf(cdf, 200, rng)
        assert out.min() >= 0 and out.max() < n
