"""Tests for pipelined bucket training (prefetch + cache + writeback).

The load-bearing property is *bit-identical equivalence*: under a fixed
seed the pipelined trainer must produce exactly the embeddings and
optimizer state of the serial path, because prefetching only moves disk
reads off the critical path and never perturbs RNG consumption order.
"""

import threading
import time

import numpy as np
import pytest

from repro.config import single_entity_config
from repro.core.checkpointing import save_model
from repro.core.model import EmbeddingModel
from repro.core.tables import DenseEmbeddingTable
from repro.core.trainer import PipelineStats, Trainer
from repro.graph.edgelist import EdgeList
from repro.graph.entity_storage import EntityStorage
from repro.graph.partitioning import partition_entities
from repro.graph.storage import (
    PartitionCache,
    PartitionPipeline,
    PartitionedEmbeddingStorage,
    StorageError,
    WritebackQueue,
)
from repro.stats.memory import MemoryModel


def make_edges(num_nodes=200, num_edges=3000, seed=42) -> EdgeList:
    rng = np.random.default_rng(seed)
    return EdgeList(
        rng.integers(0, num_nodes, num_edges, dtype=np.int64),
        np.zeros(num_edges, dtype=np.int64),
        rng.integers(0, num_nodes, num_edges, dtype=np.int64),
    )


def train_run(
    tmp_path,
    *,
    pipeline: bool,
    num_partitions: int,
    budget=None,
    num_nodes=200,
    num_epochs=2,
    seed=0,
    storage_cls=PartitionedEmbeddingStorage,
    checkpoint_dir=None,
    **config_kw,
):
    """Train a small homogeneous graph; returns (model, stats, storage)."""
    config = single_entity_config(
        num_partitions=num_partitions,
        dimension=8,
        num_epochs=num_epochs,
        batch_size=200,
        chunk_size=50,
        seed=seed,
        pipeline=pipeline,
        partition_cache_budget=budget,
        checkpoint_dir=checkpoint_dir,
        **config_kw,
    )
    entities = EntityStorage({"node": num_nodes})
    if num_partitions > 1:
        entities.set_partitioning(
            "node",
            partition_entities(
                num_nodes, num_partitions, np.random.default_rng(seed)
            ),
        )
    model = EmbeddingModel(config, entities, np.random.default_rng(seed))
    storage = (
        storage_cls(tmp_path / ("pipe" if pipeline else "serial"))
        if num_partitions > 1
        else None
    )
    trainer = Trainer(
        config, model, entities, storage, np.random.default_rng(seed)
    )
    stats = trainer.train(make_edges(num_nodes), )
    # Reload evicted partitions so the full model is comparable.
    if storage is not None:
        for p in range(num_partitions):
            if not model.has_table("node", p):
                w, s = storage.load("node", p)
                model.set_table("node", p, DenseEmbeddingTable(w, s))
    return model, stats, storage


class TestEquivalence:
    @pytest.mark.parametrize("num_partitions", [1, 4])
    def test_bit_identical_embeddings(self, tmp_path, num_partitions):
        serial, _, _ = train_run(
            tmp_path, pipeline=False, num_partitions=num_partitions
        )
        piped, _, _ = train_run(
            tmp_path, pipeline=True, num_partitions=num_partitions
        )
        np.testing.assert_array_equal(
            serial.global_embeddings("node"), piped.global_embeddings("node")
        )
        for p in range(num_partitions):
            np.testing.assert_array_equal(
                serial.get_table("node", p).optimizer.state,
                piped.get_table("node", p).optimizer.state,
            )

    def test_bit_identical_with_zero_cache_budget(self, tmp_path):
        """budget=0 disables retention but must not affect results."""
        serial, _, _ = train_run(tmp_path, pipeline=False, num_partitions=4)
        piped, stats, _ = train_run(
            tmp_path, pipeline=True, num_partitions=4, budget=0
        )
        np.testing.assert_array_equal(
            serial.global_embeddings("node"), piped.global_embeddings("node")
        )
        # Nothing can be retained, so nothing can be served from memory.
        assert stats.pipeline.prefetch_hits == 0
        assert stats.pipeline.cache_evictions > 0

    def test_bit_identical_with_stratum_passes(self, tmp_path):
        serial, _, _ = train_run(
            tmp_path, pipeline=False, num_partitions=4, stratum_passes=2
        )
        piped, _, _ = train_run(
            tmp_path, pipeline=True, num_partitions=4, stratum_passes=2
        )
        np.testing.assert_array_equal(
            serial.global_embeddings("node"), piped.global_embeddings("node")
        )

    def test_same_loss_and_swap_trajectory(self, tmp_path):
        _, s_serial, _ = train_run(
            tmp_path, pipeline=False, num_partitions=4
        )
        _, s_piped, _ = train_run(tmp_path, pipeline=True, num_partitions=4)
        for e_s, e_p in zip(s_serial.epochs, s_piped.epochs):
            assert e_s.loss == e_p.loss
            assert e_s.num_edges == e_p.num_edges
            # Identical evict/load decisions as the serial path.
            assert e_s.swaps == e_p.swaps

    def test_pipeline_flag_ignored_when_unpartitioned(self, tmp_path):
        """pipeline=True with one partition needs no storage at all."""
        model, stats, _ = train_run(
            tmp_path, pipeline=True, num_partitions=1
        )
        assert stats.pipeline.prefetch_hits == 0
        assert stats.pipeline.prefetch_misses == 0
        assert model.global_embeddings("node").shape == (200, 8)


class TestCacheAccounting:
    def test_inside_out_cache_hits(self, tmp_path):
        """With an unlimited budget every partition stays in memory
        after its first epoch, so epoch >= 1 swap-ins are all hits."""
        _, stats, _ = train_run(
            tmp_path, pipeline=True, num_partitions=4,
            bucket_order="inside_out", num_epochs=3,
        )
        first, *rest = stats.epochs
        # Epoch 0: first-touch initialisations are misses by definition,
        # but inside-out's (n, m), (m, n) pairing still re-serves
        # evicted partitions from the cache.
        assert first.pipeline.prefetch_misses == 4  # one init per partition
        assert first.pipeline.prefetch_hits > 0
        for epoch_stats in rest:
            assert epoch_stats.pipeline.prefetch_misses == 0
            assert epoch_stats.pipeline.prefetch_hits > 0
        assert stats.pipeline.hit_rate > 0.5

    def test_per_epoch_stats_sum_to_run_total(self, tmp_path):
        _, stats, _ = train_run(
            tmp_path, pipeline=True, num_partitions=4, num_epochs=3
        )
        total = PipelineStats()
        for e in stats.epochs:
            total.merge(e.pipeline)
        assert stats.pipeline.prefetch_hits == total.prefetch_hits
        assert stats.pipeline.prefetch_misses == total.prefetch_misses

    def test_serial_mode_reports_zero_pipeline_stats(self, tmp_path):
        _, stats, _ = train_run(
            tmp_path, pipeline=False, num_partitions=4
        )
        p = stats.pipeline
        assert (p.prefetch_hits, p.prefetch_misses, p.cache_evictions) == (
            0, 0, 0,
        )
        assert p.writeback_stall_time == 0.0


class SlowSaveStorage(PartitionedEmbeddingStorage):
    """Storage whose saves are slow enough to still be in flight when a
    checkpoint is requested (writeback always lags training here)."""

    def __init__(self, root, delay=0.05):
        super().__init__(root)
        self.delay = delay
        self.completed_saves = 0
        self._save_lock = threading.Lock()

    def save(self, entity_type, part, embeddings, optim_state):
        time.sleep(self.delay)
        super().save(entity_type, part, embeddings, optim_state)
        with self._save_lock:
            self.completed_saves += 1


class TestWritebackDurability:
    def test_checkpoint_drains_inflight_writebacks(self, tmp_path):
        """Training with slow async saves + per-epoch checkpoints: the
        checkpoint barrier must drain the queue, so after training every
        partition's stored bytes equal the final in-memory state."""
        model, stats, storage = train_run(
            tmp_path, pipeline=True, num_partitions=4, num_epochs=1,
            storage_cls=SlowSaveStorage,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        assert storage.stored_partitions("node") == [0, 1, 2, 3]
        for p in range(4):
            table = model.get_table("node", p)
            disk_w, disk_s = storage.load("node", p)
            np.testing.assert_array_equal(disk_w, table.weights)
            np.testing.assert_array_equal(disk_s, table.optimizer.state)

    def test_save_model_barrier_runs_before_write(self, tmp_path):
        """save_model(barrier=...) must invoke the barrier before
        persisting anything — simulating the crash-consistency
        contract: a checkpoint is only declared after the drain."""
        store = SlowSaveStorage(tmp_path / "swap", delay=0.2)
        wb = WritebackQueue(store)
        rng = np.random.default_rng(0)
        w = rng.standard_normal((6, 4)).astype(np.float32)
        s = rng.random(6).astype(np.float32)
        wb.submit("node", 0, w, s)
        # The write is still in flight: nothing on disk yet.
        assert not store.exists("node", 0)

        config = single_entity_config(num_partitions=1)
        entities = EntityStorage({"node": 6})
        model = EmbeddingModel(config, entities, np.random.default_rng(0))
        model.init_partition("node", 0, np.random.default_rng(0))
        events = []
        save_model(
            tmp_path / "ckpt", model, entities,
            barrier=lambda: events.append(wb.drain()),
        )
        assert len(events) == 1  # barrier ran
        assert store.exists("node", 0)  # ...and drained the queue
        np.testing.assert_array_equal(store.load("node", 0)[0], w)
        wb.close()

    def test_writeback_error_surfaces_on_drain(self, tmp_path):
        class BrokenStorage(PartitionedEmbeddingStorage):
            def save(self, *a, **kw):
                raise OSError("disk on fire")

        wb = WritebackQueue(BrokenStorage(tmp_path / "swap"))
        wb.submit(
            "node", 0,
            np.zeros((2, 2), np.float32), np.zeros(2, np.float32),
        )
        with pytest.raises(StorageError, match="background partition write"):
            wb.drain()

    def test_flush_before_reuse_blocks_on_pending_write(self, tmp_path):
        """take() of a dirty entry with an in-flight write must not
        return until the write lands (the caller will mutate the
        arrays)."""
        store = SlowSaveStorage(tmp_path / "swap", delay=0.15)
        wb = WritebackQueue(store)
        cache = PartitionCache(store, writeback=wb)
        w = np.ones((4, 2), np.float32)
        s = np.ones(4, np.float32)
        cache.put("node", 0, w, s, dirty=True)
        got = cache.take("node", 0)  # must block until the save lands
        assert got is not None
        assert store.completed_saves == 1
        wb.close()


def _part(seed=0, n=8, d=4):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((n, d)).astype(np.float32),
        rng.random(n).astype(np.float32),
    )


class TestPartitionPipeline:
    """Unit tests for the bundled prefetch/cache/writeback subsystem
    shared by the single-machine and distributed trainers."""

    def test_park_take_roundtrip(self, tmp_path):
        pipe = PartitionPipeline(PartitionedEmbeddingStorage(tmp_path))
        w, s = _part()
        pipe.park("node", 0, w, s)
        got, from_cache = pipe.take("node", 0)
        assert from_cache
        np.testing.assert_array_equal(got[0], w)
        pipe.close()

    def test_take_missing_returns_none(self, tmp_path):
        pipe = PartitionPipeline(PartitionedEmbeddingStorage(tmp_path))
        got, from_cache = pipe.take("node", 7)
        assert got is None and not from_cache
        pipe.close()

    def test_schedule_prefetch_hits_cache(self, tmp_path):
        storage = PartitionedEmbeddingStorage(tmp_path)
        storage.save("node", 0, *_part())
        pipe = PartitionPipeline(storage)
        assert pipe.schedule([("node", 0), ("node", 1)]) == 2
        pipe.settle()
        assert pipe.cache.contains("node", 0)
        assert not pipe.cache.contains("node", 1)  # nothing stored
        _, from_cache = pipe.take("node", 0)
        assert from_cache
        pipe.close()

    def test_schedule_noop_at_zero_budget(self, tmp_path):
        storage = PartitionedEmbeddingStorage(tmp_path)
        storage.save("node", 0, *_part())
        pipe = PartitionPipeline(storage, budget_bytes=0)
        assert pipe.schedule([("node", 0)]) == 0
        pipe.close()

    def test_stale_hit_falls_back_to_backend(self, tmp_path):
        """A cache hit the validator rejects must be discarded and
        re-read from the backend (the distributed staleness path)."""
        storage = PartitionedEmbeddingStorage(tmp_path)
        fresh_w, fresh_s = _part(seed=9)
        storage.save("node", 0, fresh_w, fresh_s)
        pipe = PartitionPipeline(
            storage, validate=lambda et, p: False
        )
        stale_w, stale_s = _part(seed=1)
        pipe.cache.put("node", 0, stale_w, stale_s, dirty=False)
        got, from_cache = pipe.take("node", 0)
        assert not from_cache
        assert pipe.stale_hits == 1
        np.testing.assert_array_equal(got[0], fresh_w)
        pipe.close()

    def test_on_flushed_fires_once_after_land(self, tmp_path):
        pipe = PartitionPipeline(PartitionedEmbeddingStorage(tmp_path))
        events = []
        w, s = _part()
        pipe.park("node", 0, w, s, on_flushed=lambda: events.append(0))
        pipe.drain()
        pipe.cache.flush_dirty()  # entry already clean; must not re-fire
        pipe.drain()
        assert events == [0]
        pipe.close()

    def test_on_flushed_fires_on_budget_eviction(self, tmp_path):
        """Synchronous budget evictions must also report the land —
        the distributed lock deferral relies on it."""
        storage = PartitionedEmbeddingStorage(tmp_path)
        events = []
        cache = PartitionCache(storage, budget_bytes=0)
        w, s = _part()
        cache.put(
            "node", 0, w, s, dirty=True,
            on_flushed=lambda: events.append(0),
        )
        assert events == [0]
        assert storage.exists("node", 0)


class TestMemoryModel:
    def _setup(self, budget):
        config = single_entity_config(
            num_partitions=4, dimension=8,
            pipeline=True, partition_cache_budget=budget,
        )
        entities = EntityStorage({"node": 400})
        entities.set_partitioning(
            "node", partition_entities(400, 4, np.random.default_rng(0))
        )
        return MemoryModel(config, entities)

    def test_unlimited_budget_caps_at_all_partitions(self):
        mm = self._setup(None)
        all_parts = sum(mm.partition_bytes("node", p) for p in range(4))
        assert mm.partition_cache_peak_bytes() == all_parts
        assert mm.pipelined_peak_bytes() == (
            mm.single_machine_peak_bytes() + all_parts
        )

    def test_budget_zero_matches_serial_footprint(self):
        mm = self._setup(0)
        assert mm.pipelined_peak_bytes() == mm.single_machine_peak_bytes()

    def test_finite_budget_is_respected(self):
        budget = 100
        mm = self._setup(budget)
        assert mm.partition_cache_peak_bytes() == budget

    def test_trainer_peak_includes_cache(self, tmp_path):
        _, serial_stats, _ = train_run(
            tmp_path, pipeline=False, num_partitions=4
        )
        _, piped_stats, _ = train_run(
            tmp_path, pipeline=True, num_partitions=4
        )
        # The pipelined run reports cache bytes in its peak, so it is
        # at least as large as the serial peak.
        assert (
            piped_stats.peak_resident_bytes
            >= serial_stats.peak_resident_bytes
        )


class TestFlushDirtyRace:
    """flush_dirty vs the concurrent land of an already-submitted write:
    the flusher must never re-push a partition whose dirty bit was (or
    is about to be) cleared by the write landing — on a versioned
    backend a double push re-versions bytes that already landed,
    invalidating every other machine's delta baseline."""

    def test_flush_skips_entry_with_write_in_flight(self, tmp_path):
        """Snapshot sees the entry dirty while its insert-time write is
        still queued: flush must not submit a second write."""

        class GatedStorage(PartitionedEmbeddingStorage):
            def __init__(self, root):
                super().__init__(root)
                self.gate = threading.Event()
                self.completed = 0

            def save(self, *args, **kwargs):
                self.gate.wait(5.0)
                super().save(*args, **kwargs)
                self.completed += 1

        store = GatedStorage(tmp_path / "swap")
        wb = WritebackQueue(store)
        cache = PartitionCache(store, writeback=wb)
        w = np.ones((4, 2), np.float32)
        s = np.ones(4, np.float32)
        cache.put("node", 0, w, s, dirty=True)  # write queued, gated
        cache.flush_dirty()  # dirty + pending → must skip, not re-push
        cache.flush_dirty()  # and again, from a second flusher
        store.gate.set()
        wb.drain()
        assert store.completed == 1
        wb.close()

    def test_flush_skips_entry_cleaned_between_snapshot_and_submit(
        self, tmp_path
    ):
        """The lock-scoped interleaving: flush's snapshot sees dirty,
        is_pending already reads False, but the landing write flips the
        bit before flush reaches its re-check — the re-check under the
        cache lock must catch it and skip."""
        store = PartitionedEmbeddingStorage(tmp_path / "swap")
        wb = WritebackQueue(store)
        cache = PartitionCache(store, writeback=wb)
        w = np.ones((4, 2), np.float32)
        s = np.ones(4, np.float32)
        cache.put("node", 0, w, s, dirty=True)
        wb.drain()
        entry = cache._entries[("node", 0)]
        entry.dirty = True  # re-arm so flush's snapshot includes it

        def is_pending_then_land(entity_type, part):
            # Simulate the concurrent commit landing exactly in the
            # window between the snapshot and the re-check.
            cache._landed((entity_type, part), entry)
            return False

        wb.is_pending = is_pending_then_land
        submitted = []
        wb.submit = lambda *a, **kw: submitted.append(a)
        cache.flush_dirty()
        assert submitted == []  # guard caught the cleared bit
        wb.submit = WritebackQueue.submit.__get__(wb)
        wb.is_pending = WritebackQueue.is_pending.__get__(wb)
        wb.close()

    def test_no_double_version_on_server_backend(self, tmp_path):
        """End-to-end on the versioned backend: insert + flush + drain
        must land exactly one server version, or every other machine's
        delta baseline is spuriously invalidated."""
        from repro.distributed.partition_server import (
            PartitionServer,
            PartitionServerStorage,
        )

        server = PartitionServer(1)
        backend = PartitionServerStorage(server)
        wb = WritebackQueue(backend)
        cache = PartitionCache(backend, writeback=wb)
        w = np.ones((4, 2), np.float32)
        s = np.ones(4, np.float32)
        cache.put("node", 0, w, s, dirty=True)
        cache.flush_dirty()
        wb.drain()
        cache.flush_dirty()  # entry is clean now; nothing to do
        wb.drain()
        assert server.version("node", 0) == 1
        wb.close()
